package memsim

import (
	"fmt"
	"math/bits"

	"dlrmsim/internal/check"
)

// CacheConfig describes one cache level's geometry and hit latency.
type CacheConfig struct {
	Name       string
	SizeBytes  int64
	Ways       int
	LatencyCyc int64 // access (hit) latency in cycles
}

// Cache is a set-associative cache with true-LRU replacement. The zero
// value is not usable; construct with NewCache.
//
// Line state is stored as parallel arrays rather than an array of structs:
// the tag scan — the operation every probe performs — walks 8 bytes per
// way instead of 32, so a whole 8-way set's tags fit in one host cache
// line. Recency is tracked with a per-cache monotonic counter rather than
// physical ordering, so hits don't shuffle memory.
//
// Reset is O(1): it bumps an epoch, and each set lazily re-validates
// against the epoch on first touch. This is what makes reusing a Cache
// across simulation runs (see core's engine pool) cheap even for a
// multi-megabyte LLC.
type Cache struct {
	cfg CacheConfig

	// Per-line state, sets × ways, flattened. tags holds (tag<<1)|1 for a
	// valid line and 0 for an invalid one, so one compare tests tag and
	// validity together.
	tags  []uint64
	ready []int64 // cycle at which the line's fill completes
	used  []int64 // recency stamp; larger = more recent
	pref  []bool  // filled by a prefetch and not yet demand-touched

	// setEpoch[s] != epoch marks set s as untouched since the last Reset;
	// its tags are cleared on first access.
	setEpoch []uint64
	epoch    uint64

	ways     int
	setMask  uint64
	tagShift uint // line-offset bits + set-index bits, in one shift
	clock    int64

	// Stats accumulates hit/miss counters for this level.
	Stats CacheStats
}

// CacheStats counts the traffic observed by one cache level.
type CacheStats struct {
	DemandHits     uint64 // demand accesses that hit
	DemandMisses   uint64 // demand accesses that missed
	PrefetchFills  uint64 // lines installed by prefetch requests
	PrefetchHits   uint64 // demand hits on lines a prefetch installed
	InFlightHits   uint64 // demand hits that waited on an in-flight fill
	Evictions      uint64 // valid lines displaced
	UselessPrefILL uint64 // prefetched lines evicted before any demand touch
}

// HitRate returns demand hits / demand accesses (0 when idle).
func (s CacheStats) HitRate() float64 {
	total := s.DemandHits + s.DemandMisses
	if total == 0 {
		return 0
	}
	return float64(s.DemandHits) / float64(total)
}

// NewCache builds a cache from cfg. Sets = size / (line * ways), rounded
// down to a power of two so set indexing is a mask (real L3 slices aren't
// power-of-two sized; the rounding costs <2% capacity). It panics on
// nonsensical configs, which indicate programmer error.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("memsim: invalid cache config %+v", cfg))
	}
	numSets := cfg.SizeBytes / (LineSize * int64(cfg.Ways))
	if numSets < 1 {
		numSets = 1
	}
	numSets = 1 << (bits.Len64(uint64(numSets)) - 1)
	lines := int(numSets) * cfg.Ways
	return &Cache{
		cfg:      cfg,
		tags:     make([]uint64, lines),
		ready:    make([]int64, lines),
		used:     make([]int64, lines),
		pref:     make([]bool, lines),
		setEpoch: make([]uint64, numSets),
		ways:     cfg.Ways,
		setMask:  uint64(numSets - 1),
		tagShift: lineShift + uint(bits.Len64(uint64(numSets-1))),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// NumSets returns the number of sets after power-of-two rounding.
func (c *Cache) NumSets() int { return len(c.setEpoch) }

// CapacityLines returns the number of lines the cache can hold.
func (c *Cache) CapacityLines() int64 { return int64(len(c.tags)) }

// setBase locates a's set, lazily emptying it if it is stale from a prior
// epoch, and returns the set's base line index plus the encoded tag to
// match ((tag<<1)|1 — never 0, so invalid lines can never match).
func (c *Cache) setBase(a Addr) (int, uint64) {
	la := uint64(a)
	set := int((la >> lineShift) & c.setMask)
	base := set * c.ways
	if c.setEpoch[set] != c.epoch {
		c.setEpoch[set] = c.epoch
		clear(c.tags[base : base+c.ways])
	}
	return base, (la>>c.tagShift)<<1 | 1
}

// Lookup probes for the line containing a. On a hit it updates recency and
// counters and returns (readyAt, true); on a miss it returns (0, false).
// demand distinguishes demand loads/stores (counted, clears prefetch flag)
// from prefetch probes (not counted as demand traffic).
func (c *Cache) Lookup(a Addr, demand bool, now int64) (readyAt int64, hit bool) {
	base, want := c.setBase(a)
	_, readyAt, hit = c.lookupAt(base, want, demand, now)
	return readyAt, hit
}

// lookupAt is Lookup with the set probe (base, want) already computed —
// Hierarchy.Access probes each level once and reuses the probe for the
// fill on the way back. On a hit it also returns the line's index, which
// fillAt and touchAt accept. The probe must come from setBase in the
// same logical access (no Reset in between).
func (c *Cache) lookupAt(base int, want uint64, demand bool, now int64) (idx int, readyAt int64, hit bool) {
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] != want {
			continue
		}
		c.clock++
		c.used[i] = c.clock
		if demand {
			c.Stats.DemandHits++
			if c.pref[i] {
				c.Stats.PrefetchHits++
				c.pref[i] = false
			}
			if c.ready[i] > now {
				c.Stats.InFlightHits++
			}
		}
		return i, c.ready[i], true
	}
	if demand {
		c.Stats.DemandMisses++
	}
	return -1, 0, false
}

// touchAt re-touches a line known to be resident at index idx as a
// demand hit, with exactly a Lookup hit's recency and counter effects,
// and returns the line's readyAt. AccessBatch's same-line fast path:
// the previous access left the line resident and nothing between two
// accesses of one hierarchy can evict it.
func (c *Cache) touchAt(idx int, a Addr, now int64) int64 {
	if check.Enabled {
		_, want := c.setBase(a)
		check.Assert(c.tags[idx] == want,
			"memsim: %s: touchAt(%d) for %#x but slot holds tag %#x", c.cfg.Name, idx, a, c.tags[idx])
	}
	c.clock++
	c.used[idx] = c.clock
	c.Stats.DemandHits++
	if c.pref[idx] {
		c.Stats.PrefetchHits++
		c.pref[idx] = false
	}
	if c.ready[idx] > now {
		c.Stats.InFlightHits++
	}
	return c.ready[idx]
}

// Fill installs the line containing a, with its data becoming available at
// readyAt. The LRU line of the set is evicted if the set is full. prefetch
// marks the fill as speculative for useless-prefetch accounting.
func (c *Cache) Fill(a Addr, readyAt int64, prefetch bool) {
	base, want := c.setBase(a)
	c.fillAt(base, want, readyAt, prefetch)
}

// fillAt is Fill with the probe precomputed (see lookupAt). One pass
// over the set finds the resident line, the first invalid way, and the
// LRU victim together — the fill path runs on every miss, and the old
// match-scan-then-victim-scan walked the set twice. Returns the index
// the line now occupies.
func (c *Cache) fillAt(base int, want uint64, readyAt int64, prefetch bool) int {
	c.clock++
	victim := base
	invalid := -1
	var victimUsed int64 = 1<<63 - 1
	for i := base; i < base+c.ways; i++ {
		switch {
		case c.tags[i] == want:
			// Already present (e.g. two prefetches to one line). The tag
			// is resident at most once (asserted below), so no later way
			// can also match.
			if readyAt < c.ready[i] {
				c.ready[i] = readyAt
			}
			c.used[i] = c.clock
			return i
		case c.tags[i] == 0:
			if invalid < 0 {
				invalid = i
			}
		case c.used[i] < victimUsed:
			victim, victimUsed = i, c.used[i]
		}
	}
	if invalid >= 0 {
		victim = invalid
	} else {
		c.Stats.Evictions++
		if c.pref[victim] {
			c.Stats.UselessPrefILL++
		}
	}
	c.tags[victim] = want
	c.ready[victim] = readyAt
	c.used[victim] = c.clock
	c.pref[victim] = prefetch
	if prefetch {
		c.Stats.PrefetchFills++
	}
	if check.Enabled {
		// Set occupancy can never exceed the associativity, and a tag must
		// be resident at most once — a duplicate would make hit accounting
		// and LRU recency nonsense.
		dup := 0
		for i := base; i < base+c.ways; i++ {
			if c.tags[i] == want {
				dup++
			}
		}
		check.Assert(dup == 1, "memsim: %s: tag %#x resident %d times in one set", c.cfg.Name, want, dup)
	}
	return victim
}

// refreshAt re-installs a line already known resident at idx — exactly
// fillAt's match branch, minus the set scan the caller just performed via
// lookupAt in the same logical access (no Reset or eviction in between).
func (c *Cache) refreshAt(idx int, readyAt int64) {
	c.clock++
	if readyAt < c.ready[idx] {
		c.ready[idx] = readyAt
	}
	c.used[idx] = c.clock
}

// Contains reports whether the line holding a is resident, without touching
// recency or counters. Intended for tests and assertions.
func (c *Cache) Contains(a Addr) bool {
	base, want := c.setBase(a)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == want {
			return true
		}
	}
	return false
}

// Reset empties the cache and zeroes its counters. It is O(sets in name
// only): the epoch bump invalidates every set, and sets re-validate lazily
// on first touch, so a Reset costs O(1) regardless of cache size.
func (c *Cache) Reset() {
	c.epoch++
	c.clock = 0
	c.Stats = CacheStats{}
}
