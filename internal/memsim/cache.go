package memsim

import (
	"fmt"
	"math/bits"
)

// line is one cache line's metadata. Recency is tracked with a per-cache
// monotonic counter rather than physical ordering, so hits don't shuffle
// memory.
type line struct {
	tag      uint64
	readyAt  int64 // cycle at which the fill completes
	used     int64 // recency stamp; larger = more recent
	valid    bool
	prefetch bool // filled by a prefetch and not yet demand-touched
}

// CacheConfig describes one cache level's geometry and hit latency.
type CacheConfig struct {
	Name       string
	SizeBytes  int64
	Ways       int
	LatencyCyc int64 // access (hit) latency in cycles
}

// Cache is a set-associative cache with true-LRU replacement. The zero
// value is not usable; construct with NewCache.
type Cache struct {
	cfg      CacheConfig
	lines    []line // sets × ways, flattened
	ways     int
	setMask  uint64
	setShift uint
	clock    int64

	// Stats accumulates hit/miss counters for this level.
	Stats CacheStats
}

// CacheStats counts the traffic observed by one cache level.
type CacheStats struct {
	DemandHits     uint64 // demand accesses that hit
	DemandMisses   uint64 // demand accesses that missed
	PrefetchFills  uint64 // lines installed by prefetch requests
	PrefetchHits   uint64 // demand hits on lines a prefetch installed
	InFlightHits   uint64 // demand hits that waited on an in-flight fill
	Evictions      uint64 // valid lines displaced
	UselessPrefILL uint64 // prefetched lines evicted before any demand touch
}

// HitRate returns demand hits / demand accesses (0 when idle).
func (s CacheStats) HitRate() float64 {
	total := s.DemandHits + s.DemandMisses
	if total == 0 {
		return 0
	}
	return float64(s.DemandHits) / float64(total)
}

// NewCache builds a cache from cfg. Sets = size / (line * ways), rounded
// down to a power of two so set indexing is a mask (real L3 slices aren't
// power-of-two sized; the rounding costs <2% capacity). It panics on
// nonsensical configs, which indicate programmer error.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("memsim: invalid cache config %+v", cfg))
	}
	numSets := cfg.SizeBytes / (LineSize * int64(cfg.Ways))
	if numSets < 1 {
		numSets = 1
	}
	numSets = 1 << (bits.Len64(uint64(numSets)) - 1)
	return &Cache{
		cfg:      cfg,
		lines:    make([]line, numSets*int64(cfg.Ways)),
		ways:     cfg.Ways,
		setMask:  uint64(numSets - 1),
		setShift: uint(bits.TrailingZeros64(LineSize)),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// NumSets returns the number of sets after power-of-two rounding.
func (c *Cache) NumSets() int { return len(c.lines) / c.ways }

// CapacityLines returns the number of lines the cache can hold.
func (c *Cache) CapacityLines() int64 { return int64(len(c.lines)) }

func (c *Cache) setAndTag(a Addr) (int, uint64) {
	la := uint64(a) >> c.setShift
	return int(la&c.setMask) * c.ways, la >> bits.Len64(c.setMask)
}

// Lookup probes for the line containing a. On a hit it updates recency and
// counters and returns (readyAt, true); on a miss it returns (0, false).
// demand distinguishes demand loads/stores (counted, clears prefetch flag)
// from prefetch probes (not counted as demand traffic).
func (c *Cache) Lookup(a Addr, demand bool, now int64) (readyAt int64, hit bool) {
	base, tag := c.setAndTag(a)
	set := c.lines[base : base+c.ways]
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			c.clock++
			ln.used = c.clock
			if demand {
				c.Stats.DemandHits++
				if ln.prefetch {
					c.Stats.PrefetchHits++
					ln.prefetch = false
				}
				if ln.readyAt > now {
					c.Stats.InFlightHits++
				}
			}
			return ln.readyAt, true
		}
	}
	if demand {
		c.Stats.DemandMisses++
	}
	return 0, false
}

// Fill installs the line containing a, with its data becoming available at
// readyAt. The LRU line of the set is evicted if the set is full. prefetch
// marks the fill as speculative for useless-prefetch accounting.
func (c *Cache) Fill(a Addr, readyAt int64, prefetch bool) {
	base, tag := c.setAndTag(a)
	set := c.lines[base : base+c.ways]
	c.clock++
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			// Already present (e.g. two prefetches to one line).
			if readyAt < ln.readyAt {
				ln.readyAt = readyAt
			}
			ln.used = c.clock
			return
		}
	}
	victim := 0
	var victimUsed int64 = 1<<63 - 1
	for i := range set {
		ln := &set[i]
		if !ln.valid {
			victim = i
			break
		}
		if ln.used < victimUsed {
			victim, victimUsed = i, ln.used
		}
	}
	v := &set[victim]
	if v.valid {
		c.Stats.Evictions++
		if v.prefetch {
			c.Stats.UselessPrefILL++
		}
	}
	*v = line{tag: tag, readyAt: readyAt, used: c.clock, valid: true, prefetch: prefetch}
	if prefetch {
		c.Stats.PrefetchFills++
	}
}

// Contains reports whether the line holding a is resident, without touching
// recency or counters. Intended for tests and assertions.
func (c *Cache) Contains(a Addr) bool {
	base, tag := c.setAndTag(a)
	for _, ln := range c.lines[base : base+c.ways] {
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Reset empties the cache and zeroes its counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock = 0
	c.Stats = CacheStats{}
}
