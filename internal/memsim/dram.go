package memsim

// DRAMConfig describes the memory behind the LLC.
type DRAMConfig struct {
	// BaseLatencyCyc is the unloaded round-trip latency of a line fill in
	// core cycles (row activation + transfer + controller overheads).
	BaseLatencyCyc int64
	// PeakBandwidthBytesPerCyc is the per-socket peak bandwidth expressed
	// in bytes per core cycle (e.g. 140 GB/s at 2.4 GHz ≈ 58.3 B/cyc).
	PeakBandwidthBytesPerCyc float64
	// QueueSensitivity scales how sharply latency grows with utilization;
	// 1.0 approximates an M/D/1 controller queue.
	QueueSensitivity float64
}

// DRAM models main memory as a fixed base latency plus a utilization-
// dependent queueing term:
//
//	latency = base × (1 + k·ρ/(1−ρ))
//
// where ρ is the demanded fraction of peak bandwidth. ρ is supplied from
// outside (package cpusim solves a fixed point across cores) rather than
// tracked per access, which keeps the multi-core model deterministic and
// O(1) per access. The model is a documented approximation of a shared
// memory controller; see DESIGN.md §5.
type DRAM struct {
	cfg DRAMConfig
	rho float64

	// Stats counts traffic.
	Stats DRAMStats
}

// DRAMStats counts DRAM traffic.
type DRAMStats struct {
	LineFills     uint64 // demand + prefetch fills served
	PrefetchFills uint64 // subset of LineFills that were prefetches
	BytesRead     uint64
}

// NewDRAM returns a DRAM model with utilization 0.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.BaseLatencyCyc <= 0 || cfg.PeakBandwidthBytesPerCyc <= 0 {
		panic("memsim: invalid DRAM config")
	}
	if cfg.QueueSensitivity == 0 {
		cfg.QueueSensitivity = 1
	}
	return &DRAM{cfg: cfg}
}

// Config returns the DRAM parameters.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// SetUtilization installs the bandwidth utilization ρ ∈ [0, 1) used for the
// queueing term. Values ≥ 0.97 are clamped to keep latency finite; a real
// controller saturates rather than diverging.
func (d *DRAM) SetUtilization(rho float64) {
	if rho < 0 {
		rho = 0
	}
	if rho > 0.97 {
		rho = 0.97
	}
	d.rho = rho
}

// Utilization returns the installed ρ.
func (d *DRAM) Utilization() float64 { return d.rho }

// AccessLatency returns the cycles to fill one line under the current
// utilization.
func (d *DRAM) AccessLatency() int64 {
	q := 1 + d.cfg.QueueSensitivity*d.rho/(1-d.rho)
	return int64(float64(d.cfg.BaseLatencyCyc) * q)
}

// RecordFill accounts one line fill.
func (d *DRAM) RecordFill(prefetch bool) {
	d.Stats.LineFills++
	d.Stats.BytesRead += LineSize
	if prefetch {
		d.Stats.PrefetchFills++
	}
}

// Reset zeroes counters but keeps configuration and utilization.
func (d *DRAM) Reset() { d.Stats = DRAMStats{} }
