package memsim

import "testing"

// TestHierarchyAccessSteadyStateZeroAlloc pins the per-access demand path
// to zero heap allocations once warm. The hot loop spends its life here
// (see DESIGN.md §9); a regression that reintroduces a per-miss slice —
// e.g. a prefetcher returning a fresh candidate list instead of appending
// to the hierarchy's scratch — turns into GC pressure across every
// simulated cycle, so it is guarded as a correctness property, not left
// to benchmark review.
func TestHierarchyAccessSteadyStateZeroAlloc(t *testing.T) {
	p := benchParams()
	h := NewHierarchy(p, NewShared(p))
	addrs := benchAddrs(1 << 12)
	mask := len(addrs) - 1

	// Warm up: grow the prefetch scratch and the stride table's slot map
	// to their steady-state footprint.
	var now int64
	for _, a := range addrs {
		h.Access(now, a, KindLoad)
		now += 4
	}

	i := 0
	avg := testing.AllocsPerRun(200, func() {
		h.Access(now, addrs[i&mask], KindLoad)
		now += 4
		i++
	})
	if avg != 0 {
		t.Fatalf("Hierarchy.Access allocates %.2f objects per access in steady state; want 0", avg)
	}
}

// TestCacheLookupFillZeroAlloc pins the single-level Lookup/Fill pair to
// zero allocations from construction onward — the split tag/metadata
// arrays are sized once in NewCache and never grow.
func TestCacheLookupFillZeroAlloc(t *testing.T) {
	c := NewCache(CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 5})
	addrs := benchAddrs(1 << 10)
	mask := len(addrs) - 1
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		a := addrs[i&mask]
		if _, hit := c.Lookup(a, true, int64(i)); !hit {
			c.Fill(a, int64(i), false)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("Cache Lookup/Fill allocates %.2f objects per access; want 0", avg)
	}
}
