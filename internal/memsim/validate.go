package memsim

import (
	"errors"
	"fmt"
	"math/bits"
)

// Validate reports every problem with one cache level's geometry at once.
// The constructors panic on the same conditions (a bad geometry is a
// programming error by the time it reaches NewCache); Validate is the
// fail-fast front door the CLIs and config layers use to reject bad input
// with actionable messages before any simulation starts.
func (c CacheConfig) Validate() error {
	var errs []error
	if c.SizeBytes <= 0 {
		errs = append(errs, fmt.Errorf("memsim: %s: non-positive size %d bytes", c.Name, c.SizeBytes))
	}
	if c.Ways <= 0 {
		errs = append(errs, fmt.Errorf("memsim: %s: non-positive associativity %d", c.Name, c.Ways))
	}
	if c.LatencyCyc < 0 {
		errs = append(errs, fmt.Errorf("memsim: %s: negative hit latency %d", c.Name, c.LatencyCyc))
	}
	if c.SizeBytes > 0 && c.Ways > 0 && c.SizeBytes < LineSize*int64(c.Ways) {
		errs = append(errs, fmt.Errorf("memsim: %s: size %d bytes cannot hold one %d-way set of %d-byte lines",
			c.Name, c.SizeBytes, c.Ways, LineSize))
	}
	return errors.Join(errs...)
}

// Sets returns the power-of-two set count NewCache will build for this
// geometry (the size is rounded down to a power-of-two number of sets).
func (c CacheConfig) Sets() int64 {
	numSets := c.SizeBytes / (LineSize * int64(c.Ways))
	if numSets < 1 {
		numSets = 1
	}
	return 1 << (bits.Len64(uint64(numSets)) - 1)
}

// Validate reports every problem with the DRAM model's parameters.
func (d DRAMConfig) Validate() error {
	var errs []error
	if d.BaseLatencyCyc <= 0 {
		errs = append(errs, fmt.Errorf("memsim: DRAM: non-positive base latency %d", d.BaseLatencyCyc))
	}
	if d.PeakBandwidthBytesPerCyc <= 0 {
		errs = append(errs, fmt.Errorf("memsim: DRAM: non-positive peak bandwidth %g B/cyc", d.PeakBandwidthBytesPerCyc))
	}
	if d.QueueSensitivity < 0 {
		errs = append(errs, fmt.Errorf("memsim: DRAM: negative queue sensitivity %g", d.QueueSensitivity))
	}
	return errors.Join(errs...)
}

// Validate reports every problem with a full memory-system description:
// each level's geometry, the DRAM model, and the prefetch-engine degrees.
// All violations are returned together (errors.Join), so a CLI user fixes
// a bad config in one round trip instead of one flag at a time.
func (p MemParams) Validate() error {
	var errs []error
	for _, c := range []CacheConfig{p.L1, p.L2, p.L3} {
		if err := c.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := p.DRAM.Validate(); err != nil {
		errs = append(errs, err)
	}
	if p.L1PrefetchDegree < 0 || p.L2PrefetchDegree < 0 {
		errs = append(errs, fmt.Errorf("memsim: negative prefetch degree (L1 %d, L2 %d)",
			p.L1PrefetchDegree, p.L2PrefetchDegree))
	}
	return errors.Join(errs...)
}
