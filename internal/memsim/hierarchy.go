package memsim

// MemParams collects the geometry and latencies for one core's view of the
// memory system. Packages above (platform) construct these from CPU specs.
type MemParams struct {
	L1   CacheConfig
	L2   CacheConfig
	L3   CacheConfig // shared; size is the whole LLC
	DRAM DRAMConfig

	// HWPrefetch enables the next-line (L1) and stride (L2) hardware
	// prefetchers, the paper's "baseline"; disable for "w/o HW-PF".
	HWPrefetch bool
	// L1PrefetchDegree and L2PrefetchDegree set engine aggressiveness.
	L1PrefetchDegree int
	L2PrefetchDegree int
}

// Shared is the portion of the memory system common to all cores on a
// socket: the last-level cache and the DRAM behind it. In a multi-socket
// configuration, lines homed on another socket are served by that
// socket's DRAM plus an interconnect penalty (UPI/Infinity-Fabric-style).
type Shared struct {
	L3   *Cache
	DRAM *DRAM

	// Remote, when non-nil, is the other socket's DRAM; HomeLocal
	// decides which socket a line lives on; RemotePenaltyCyc is the
	// extra interconnect latency of a remote fill.
	Remote           *DRAM
	HomeLocal        func(Addr) bool
	RemotePenaltyCyc int64
}

// NewShared builds the shared LLC+DRAM from params (single-socket: every
// line is local).
func NewShared(p MemParams) *Shared {
	return &Shared{
		L3:   NewCache(p.L3),
		DRAM: NewDRAM(p.DRAM),
	}
}

// memLatency returns the fill latency for line a under the current
// utilizations, local or remote.
func (s *Shared) memLatency(a Addr) int64 {
	if s.Remote == nil || s.HomeLocal == nil || s.HomeLocal(a) {
		return s.DRAM.AccessLatency()
	}
	return s.Remote.AccessLatency() + s.RemotePenaltyCyc
}

// recordFill accounts a fill of line a against the serving DRAM.
func (s *Shared) recordFill(a Addr, prefetch bool) {
	if s.Remote == nil || s.HomeLocal == nil || s.HomeLocal(a) {
		s.DRAM.RecordFill(prefetch)
		return
	}
	s.Remote.RecordFill(prefetch)
}

// Reset clears the shared state and counters (the local socket's only;
// each socket resets its own).
func (s *Shared) Reset() {
	s.L3.Reset()
	s.DRAM.Reset()
}

// Hierarchy is one core's private L1D and L2 in front of the shared LLC
// and DRAM, plus the core's hardware prefetch engines.
type Hierarchy struct {
	L1     *Cache
	L2     *Cache
	shared *Shared

	l1pf HWPrefetcher
	l2pf HWPrefetcher
	// pfBuf is the scratch the prefetch engines append candidates into,
	// reused across accesses (see HWPrefetcher.OnDemandMiss).
	pfBuf []Addr
	// HWPrefetchEnabled gates the hardware engines at run time so the
	// same hierarchy can be reused across design points.
	HWPrefetchEnabled bool

	// Stats accumulates demand-load latency for the avg-load-latency
	// metric the paper reports from VTune.
	Stats HierStats
}

// HierStats aggregates core-side access metrics.
type HierStats struct {
	Loads          uint64
	Stores         uint64
	SWPrefetches   uint64
	HWPrefetches   uint64
	LoadLatencySum int64
	LevelHits      [numLevels]uint64 // demand accesses satisfied per level
}

// AvgLoadLatency returns the mean demand-load latency in cycles.
func (s HierStats) AvgLoadLatency() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.LoadLatencySum) / float64(s.Loads)
}

// NewHierarchy builds the private levels for one core in front of shared.
func NewHierarchy(p MemParams, shared *Shared) *Hierarchy {
	l1deg, l2deg := p.L1PrefetchDegree, p.L2PrefetchDegree
	if l1deg < 1 {
		l1deg = 1
	}
	if l2deg < 1 {
		l2deg = 2
	}
	return &Hierarchy{
		L1:                NewCache(p.L1),
		L2:                NewCache(p.L2),
		shared:            shared,
		l1pf:              NewNextLinePrefetcher(l1deg),
		l2pf:              NewStridePrefetcher(l2deg, 32),
		HWPrefetchEnabled: p.HWPrefetch,
	}
}

// Shared exposes the LLC+DRAM this hierarchy sits in front of.
func (h *Hierarchy) Shared() *Shared { return h.shared }

// Reset clears the private caches, prefetcher state, and counters. The
// shared levels are reset separately (they belong to all cores).
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.l1pf.Reset()
	h.l2pf.Reset()
	h.Stats = HierStats{}
}

// residual converts a line's readyAt into the observed latency for an
// access starting at now with nominal hit latency lat: the requester waits
// for whichever completes later, the cache array access or the in-flight
// fill.
func residual(now, readyAt, lat int64) int64 {
	if wait := readyAt - now; wait > lat {
		return wait
	}
	return lat
}

// Access performs one memory access at simulated cycle `now` and returns
// where it hit and its latency. Demand loads/stores walk L1→L2→L3→DRAM,
// filling inclusively on the way back. Prefetch kinds locate the line and
// install it at the hinted level (and all levels below it) without being
// counted as demand traffic.
func (h *Hierarchy) Access(now int64, a Addr, kind AccessKind) AccessResult {
	a = LineAddr(a)
	if kind.IsPrefetch() {
		return h.prefetch(now, a, kind)
	}
	res, _ := h.demandAccess(now, a, kind)
	return res
}

// AccessBatch performs the demand accesses in addrs, in order, all at
// cycle now, appending one result per address to out (which it returns,
// grown). It is observably identical to calling Access per element —
// same results, same cache state, same counters — but amortizes the
// hierarchy walk: a run of addresses falling in one line (the shape of
// an embedding-row gather, where a row spans several sequential lines
// and each line several values) touches the L1 slot the previous
// access pinned instead of re-probing every level. Prefetch kinds take
// the per-element path unchanged.
func (h *Hierarchy) AccessBatch(now int64, addrs []Addr, kind AccessKind, out []AccessResult) []AccessResult {
	if kind.IsPrefetch() {
		for _, a := range addrs {
			out = append(out, h.Access(now, a, kind))
		}
		return out
	}
	prevIdx := -1
	var prevLine Addr
	for _, a := range addrs {
		la := LineAddr(a)
		if prevIdx >= 0 && la == prevLine {
			// The previous access left la resident in L1 at prevIdx, and
			// nothing between two accesses of one hierarchy evicts it.
			if kind == KindLoad {
				h.Stats.Loads++
			} else {
				h.Stats.Stores++
			}
			readyAt := h.L1.touchAt(prevIdx, la, now)
			lat := residual(now, readyAt, h.L1.cfg.LatencyCyc)
			h.record(kind, LevelL1, lat)
			out = append(out, AccessResult{Level: LevelL1, Latency: lat, InFlightHit: readyAt > now})
			continue
		}
		res, idx := h.demandAccess(now, la, kind)
		out = append(out, res)
		prevIdx, prevLine = idx, la
	}
	return out
}

// demandAccess walks the hierarchy for one demand access to the
// line-aligned address a. Each level's set probe (base, encoded tag) is
// computed once and shared between the lookup on the way down and the
// fill on the way back — a probe is a pure function of the address and
// geometry, fillAt rescans the set's current contents, and only a
// Reset (impossible mid-access) could stale the lazy set validation,
// so prefetch fills interleaved between probe and fill are safe.
// Returns the L1 index now holding the line (every demand access ends
// with the line in L1).
func (h *Hierarchy) demandAccess(now int64, a Addr, kind AccessKind) (AccessResult, int) {
	if kind == KindLoad {
		h.Stats.Loads++
	} else {
		h.Stats.Stores++
	}

	// L1 probe.
	b1, w1 := h.L1.setBase(a)
	if idx, readyAt, hit := h.L1.lookupAt(b1, w1, true, now); hit {
		lat := residual(now, readyAt, h.L1.cfg.LatencyCyc)
		h.record(kind, LevelL1, lat)
		return AccessResult{Level: LevelL1, Latency: lat, InFlightHit: readyAt > now}, idx
	}
	// L1 miss: train the L1 hardware prefetcher. Like Intel's DCU
	// prefetcher, its fills land in L2 — strong enough to help streaming
	// code, too weak to matter for row-to-row indirection.
	if h.HWPrefetchEnabled {
		h.pfBuf = h.l1pf.OnDemandMiss(a, h.pfBuf[:0])
		for _, pa := range h.pfBuf {
			h.hwPrefetchInto(now, pa, LevelL2)
		}
	}

	// L2 probe.
	b2, w2 := h.L2.setBase(a)
	if _, readyAt, hit := h.L2.lookupAt(b2, w2, true, now); hit {
		lat := residual(now, readyAt, h.L2.cfg.LatencyCyc)
		idx := h.L1.fillAt(b1, w1, now+lat, false)
		h.record(kind, LevelL2, lat)
		return AccessResult{Level: LevelL2, Latency: lat, InFlightHit: readyAt > now}, idx
	}
	if h.HWPrefetchEnabled {
		h.pfBuf = h.l2pf.OnDemandMiss(a, h.pfBuf[:0])
		for _, pa := range h.pfBuf {
			h.hwPrefetchInto(now, pa, LevelL2)
		}
	}

	// L3 probe.
	b3, w3 := h.shared.L3.setBase(a)
	if _, readyAt, hit := h.shared.L3.lookupAt(b3, w3, true, now); hit {
		lat := residual(now, readyAt, h.shared.L3.cfg.LatencyCyc)
		h.L2.fillAt(b2, w2, now+lat, false)
		idx := h.L1.fillAt(b1, w1, now+lat, false)
		h.record(kind, LevelL3, lat)
		return AccessResult{Level: LevelL3, Latency: lat, InFlightHit: readyAt > now}, idx
	}

	// DRAM (local or remote-socket per line homing).
	lat := h.shared.L3.cfg.LatencyCyc + h.shared.memLatency(a)
	h.shared.recordFill(a, false)
	h.shared.L3.fillAt(b3, w3, now+lat, false)
	h.L2.fillAt(b2, w2, now+lat, false)
	idx := h.L1.fillAt(b1, w1, now+lat, false)
	h.record(kind, LevelDRAM, lat)
	return AccessResult{Level: LevelDRAM, Latency: lat}, idx
}

func (h *Hierarchy) record(kind AccessKind, lvl Level, lat int64) {
	h.Stats.LevelHits[lvl]++
	if kind == KindLoad {
		h.Stats.LoadLatencySum += lat
	}
}

// prefetch implements the software prefetch hints. The returned latency is
// the fill time — the core does not stall on it; package cpusim uses it to
// model MSHR occupancy.
func (h *Hierarchy) prefetch(now int64, a Addr, kind AccessKind) AccessResult {
	h.Stats.SWPrefetches++
	target := LevelL1
	switch kind {
	case KindPrefetchL2:
		target = LevelL2
	case KindPrefetchL3:
		target = LevelL3
	}
	lvl, lat := h.pfAccess(now, a, target)
	return AccessResult{Level: lvl, Latency: lat}
}

// hwPrefetchInto issues a hardware prefetch of line a into the given level.
func (h *Hierarchy) hwPrefetchInto(now int64, a Addr, target Level) {
	h.Stats.HWPrefetches++
	h.pfAccess(now, a, target)
}

// pfAccess walks the hierarchy for one prefetch of line a: it locates the
// nearest level holding the line and, unless that is already at or above
// target, installs the line at target and every level below it. Like
// demandAccess, each level's set probe is computed once and shared
// between the locate walk and the fills on the way back, and a level the
// walk proved resident is refreshed in place instead of rescanned.
// Returns the serving level and the fill latency — 0 when the hint was a
// no-op, since the requester never waits on a prefetch that is already
// close enough.
func (h *Hierarchy) pfAccess(now int64, a Addr, target Level) (Level, int64) {
	b1, w1 := h.L1.setBase(a)
	if _, _, hit := h.L1.lookupAt(b1, w1, false, now); hit {
		return LevelL1, 0 // already as close as any hint asks
	}
	b2, w2 := h.L2.setBase(a)
	if i2, readyAt, hit := h.L2.lookupAt(b2, w2, false, now); hit {
		if target >= LevelL2 {
			return LevelL2, 0
		}
		lat := residual(now, readyAt, h.L2.cfg.LatencyCyc)
		fill := now + lat
		h.shared.L3.Fill(a, fill, true)
		h.L2.refreshAt(i2, fill)
		h.L1.fillAt(b1, w1, fill, true)
		return LevelL2, lat
	}
	b3, w3 := h.shared.L3.setBase(a)
	if i3, readyAt, hit := h.shared.L3.lookupAt(b3, w3, false, now); hit {
		if target >= LevelL3 {
			return LevelL3, 0
		}
		lat := residual(now, readyAt, h.shared.L3.cfg.LatencyCyc)
		fill := now + lat
		h.shared.L3.refreshAt(i3, fill)
		if target <= LevelL2 {
			h.L2.fillAt(b2, w2, fill, true)
		}
		if target == LevelL1 {
			h.L1.fillAt(b1, w1, fill, true)
		}
		return LevelL3, lat
	}
	h.shared.recordFill(a, true)
	lat := h.shared.L3.cfg.LatencyCyc + h.shared.memLatency(a)
	fill := now + lat
	h.shared.L3.fillAt(b3, w3, fill, true)
	if target <= LevelL2 {
		h.L2.fillAt(b2, w2, fill, true)
	}
	if target == LevelL1 {
		h.L1.fillAt(b1, w1, fill, true)
	}
	return LevelDRAM, lat
}
