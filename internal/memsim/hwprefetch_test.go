package memsim

import "testing"

func TestNextLinePrefetcher(t *testing.T) {
	p := NewNextLinePrefetcher(2)
	got := p.OnDemandMiss(0x1000)
	if len(got) != 2 || got[0] != 0x1040 || got[1] != 0x1080 {
		t.Fatalf("candidates = %#v", got)
	}
}

func TestNextLinePrefetcherMinDegree(t *testing.T) {
	p := NewNextLinePrefetcher(0)
	if p.Degree != 1 {
		t.Fatalf("degree = %d", p.Degree)
	}
}

func TestStridePrefetcherDetectsConstantStride(t *testing.T) {
	p := NewStridePrefetcher(2, 8)
	base := Addr(0x10000)
	// First two misses train; the third confirms the stride.
	if got := p.OnDemandMiss(base); got != nil {
		t.Fatalf("first miss prefetched %v", got)
	}
	if got := p.OnDemandMiss(base + 128); got != nil {
		t.Fatalf("second miss prefetched %v", got)
	}
	got := p.OnDemandMiss(base + 256)
	if len(got) != 2 || got[0] != base+384 || got[1] != base+512 {
		t.Fatalf("confirmed stride candidates = %#v", got)
	}
}

func TestStridePrefetcherIgnoresIrregular(t *testing.T) {
	p := NewStridePrefetcher(2, 8)
	base := Addr(0x10000)
	p.OnDemandMiss(base)
	p.OnDemandMiss(base + 128)
	if got := p.OnDemandMiss(base + 500); got != nil {
		t.Fatalf("irregular stream prefetched %v", got)
	}
}

func TestStridePrefetcherStopsAtPageBoundary(t *testing.T) {
	p := NewStridePrefetcher(8, 8)
	base := Addr(0x10000) // page-aligned
	p.OnDemandMiss(base + 4096 - 3*64)
	p.OnDemandMiss(base + 4096 - 2*64)
	got := p.OnDemandMiss(base + 4096 - 1*64)
	if len(got) != 0 {
		t.Fatalf("crossed 4KiB boundary: %#v", got)
	}
}

func TestStridePrefetcherTableEviction(t *testing.T) {
	p := NewStridePrefetcher(1, 2)
	// Train three regions; the first must be evicted.
	p.OnDemandMiss(0x0000)
	p.OnDemandMiss(0x2000)
	p.OnDemandMiss(0x4000)
	if len(p.entries) != 2 {
		t.Fatalf("table size = %d", len(p.entries))
	}
	if _, ok := p.entries[0]; ok {
		t.Fatal("oldest region not evicted")
	}
}

func TestStridePrefetcherReset(t *testing.T) {
	p := NewStridePrefetcher(1, 4)
	p.OnDemandMiss(0x1000)
	p.Reset()
	if len(p.entries) != 0 || len(p.fifo) != 0 {
		t.Fatal("reset incomplete")
	}
}
