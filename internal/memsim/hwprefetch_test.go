package memsim

import "testing"

func TestNextLinePrefetcher(t *testing.T) {
	p := NewNextLinePrefetcher(2)
	got := p.OnDemandMiss(0x1000, nil)
	if len(got) != 2 || got[0] != 0x1040 || got[1] != 0x1080 {
		t.Fatalf("candidates = %#v", got)
	}
}

func TestNextLinePrefetcherMinDegree(t *testing.T) {
	p := NewNextLinePrefetcher(0)
	if p.Degree != 1 {
		t.Fatalf("degree = %d", p.Degree)
	}
}

func TestStridePrefetcherDetectsConstantStride(t *testing.T) {
	p := NewStridePrefetcher(2, 8)
	base := Addr(0x10000)
	// First two misses train; the third confirms the stride.
	if got := p.OnDemandMiss(base, nil); len(got) != 0 {
		t.Fatalf("first miss prefetched %v", got)
	}
	if got := p.OnDemandMiss(base+128, nil); len(got) != 0 {
		t.Fatalf("second miss prefetched %v", got)
	}
	got := p.OnDemandMiss(base+256, nil)
	if len(got) != 2 || got[0] != base+384 || got[1] != base+512 {
		t.Fatalf("confirmed stride candidates = %#v", got)
	}
}

func TestStridePrefetcherAppendsToScratch(t *testing.T) {
	p := NewStridePrefetcher(1, 8)
	base := Addr(0x10000)
	scratch := make([]Addr, 0, 4)
	p.OnDemandMiss(base, scratch[:0])
	p.OnDemandMiss(base+64, scratch[:0])
	got := p.OnDemandMiss(base+128, scratch[:0])
	if len(got) != 1 || got[0] != base+192 {
		t.Fatalf("candidates = %#v", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("did not reuse the caller's backing array")
	}
}

func TestStridePrefetcherIgnoresIrregular(t *testing.T) {
	p := NewStridePrefetcher(2, 8)
	base := Addr(0x10000)
	p.OnDemandMiss(base, nil)
	p.OnDemandMiss(base+128, nil)
	if got := p.OnDemandMiss(base+500, nil); len(got) != 0 {
		t.Fatalf("irregular stream prefetched %v", got)
	}
}

func TestStridePrefetcherStopsAtPageBoundary(t *testing.T) {
	p := NewStridePrefetcher(8, 8)
	base := Addr(0x10000) // page-aligned
	p.OnDemandMiss(base+4096-3*64, nil)
	p.OnDemandMiss(base+4096-2*64, nil)
	got := p.OnDemandMiss(base+4096-1*64, nil)
	if len(got) != 0 {
		t.Fatalf("crossed 4KiB boundary: %#v", got)
	}
}

func TestStridePrefetcherTableEviction(t *testing.T) {
	p := NewStridePrefetcher(1, 2)
	// Train three regions; the first must be evicted.
	p.OnDemandMiss(0x0000, nil)
	p.OnDemandMiss(0x2000, nil)
	p.OnDemandMiss(0x4000, nil)
	if len(p.slots) != 2 {
		t.Fatalf("table size = %d", len(p.slots))
	}
	if _, ok := p.slots[0]; ok {
		t.Fatal("oldest region not evicted")
	}
}

func TestStridePrefetcherEvictionReusesSlots(t *testing.T) {
	p := NewStridePrefetcher(1, 2)
	base := Addr(0x10000)
	// Fill the table, then churn through more regions than it holds.
	for i := 0; i < 6; i++ {
		p.OnDemandMiss(base+Addr(i)<<regionShift, nil)
	}
	if len(p.slots) != 2 || p.count != 2 {
		t.Fatalf("slots = %d count = %d", len(p.slots), p.count)
	}
	// The survivor set must be the two most recent regions.
	for i := 4; i < 6; i++ {
		if _, ok := p.slots[(base+Addr(i)<<regionShift)>>regionShift]; !ok {
			t.Fatalf("recent region %d missing", i)
		}
	}
	// A surviving region still trains: two strided misses confirm.
	a := base + 5<<regionShift
	p.OnDemandMiss(a+64, nil)
	if got := p.OnDemandMiss(a+128, nil); len(got) != 1 {
		t.Fatalf("stream in reused slot not confirmed: %#v", got)
	}
}

func TestStridePrefetcherReset(t *testing.T) {
	p := NewStridePrefetcher(1, 4)
	p.OnDemandMiss(0x1000, nil)
	p.Reset()
	if len(p.slots) != 0 || p.count != 0 {
		t.Fatal("reset incomplete")
	}
}
