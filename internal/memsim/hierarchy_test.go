package memsim

import (
	"testing"
)

// smallParams builds a downsized hierarchy for fast tests: L1 1 KiB, L2
// 4 KiB, L3 16 KiB.
func smallParams(hwpf bool) MemParams {
	return MemParams{
		L1:         CacheConfig{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, LatencyCyc: 5},
		L2:         CacheConfig{Name: "L2", SizeBytes: 4 << 10, Ways: 4, LatencyCyc: 14},
		L3:         CacheConfig{Name: "L3", SizeBytes: 16 << 10, Ways: 8, LatencyCyc: 50},
		DRAM:       DRAMConfig{BaseLatencyCyc: 200, PeakBandwidthBytesPerCyc: 58, QueueSensitivity: 1},
		HWPrefetch: hwpf,
	}
}

func newTestHier(hwpf bool) *Hierarchy {
	p := smallParams(hwpf)
	return NewHierarchy(p, NewShared(p))
}

func TestColdLoadGoesToDRAM(t *testing.T) {
	h := newTestHier(false)
	r := h.Access(0, 0x10000, KindLoad)
	if r.Level != LevelDRAM {
		t.Fatalf("cold load hit %v", r.Level)
	}
	if r.Latency != 50+200 {
		t.Fatalf("cold latency = %d", r.Latency)
	}
}

func TestLoadFillsAllLevels(t *testing.T) {
	h := newTestHier(false)
	h.Access(0, 0x10000, KindLoad)
	// A much later second access hits L1 at nominal latency.
	r := h.Access(10_000, 0x10000, KindLoad)
	if r.Level != LevelL1 || r.Latency != 5 {
		t.Fatalf("second access: %+v", r)
	}
}

func TestInFlightDemandLoadPaysResidual(t *testing.T) {
	h := newTestHier(false)
	h.Access(0, 0x10000, KindLoad) // fill completes at 250
	r := h.Access(100, 0x10000, KindLoad)
	if !r.InFlightHit {
		t.Fatal("expected in-flight hit")
	}
	if r.Latency != 150 {
		t.Fatalf("residual latency = %d, want 150", r.Latency)
	}
}

func TestSoftwarePrefetchHidesLatency(t *testing.T) {
	h := newTestHier(false)
	pr := h.Access(0, 0x20000, KindPrefetchL1)
	if pr.Level != LevelDRAM {
		t.Fatalf("prefetch sourced from %v", pr.Level)
	}
	// Demand load after the fill completes: full hit.
	r := h.Access(1000, 0x20000, KindLoad)
	if r.Level != LevelL1 || r.Latency != 5 {
		t.Fatalf("demand after prefetch: %+v", r)
	}
	if h.L1.Stats.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d", h.L1.Stats.PrefetchHits)
	}
}

func TestLatePrefetchPartiallyHides(t *testing.T) {
	h := newTestHier(false)
	h.Access(0, 0x20000, KindPrefetchL1) // ready at 250
	r := h.Access(200, 0x20000, KindLoad)
	if r.Latency != 50 {
		t.Fatalf("partially hidden latency = %d, want 50", r.Latency)
	}
}

func TestPrefetchHintLevels(t *testing.T) {
	h := newTestHier(false)
	h.Access(0, 0x30000, KindPrefetchL2)
	if h.L1.Contains(0x30000) {
		t.Fatal("T1 hint filled L1")
	}
	if !h.L2.Contains(0x30000) || !h.shared.L3.Contains(0x30000) {
		t.Fatal("T1 hint missed L2/L3")
	}
	h.Access(0, 0x40000, KindPrefetchL3)
	if h.L2.Contains(0x40000) {
		t.Fatal("T2 hint filled L2")
	}
	if !h.shared.L3.Contains(0x40000) {
		t.Fatal("T2 hint missed L3")
	}
}

func TestPrefetchToResidentLineIsNoop(t *testing.T) {
	h := newTestHier(false)
	h.Access(0, 0x50000, KindLoad)
	dramFills := h.shared.DRAM.Stats.LineFills
	r := h.Access(500, 0x50000, KindPrefetchL1)
	if r.Latency != 0 {
		t.Fatalf("prefetch of resident line cost %d", r.Latency)
	}
	if h.shared.DRAM.Stats.LineFills != dramFills {
		t.Fatal("no-op prefetch touched DRAM")
	}
}

func TestHWNextLinePrefetcherCoversSequentialStream(t *testing.T) {
	on := newTestHier(true)
	off := newTestHier(false)
	var latOn, latOff int64
	now := int64(0)
	// Sequential walk, far apart in time so fills complete.
	for i := 0; i < 64; i++ {
		a := Addr(0x100000 + i*LineSize)
		latOn += on.Access(now, a, KindLoad).Latency
		latOff += off.Access(now, a, KindLoad).Latency
		now += 1000
	}
	if latOn >= latOff {
		t.Fatalf("HW prefetch did not help sequential stream: on=%d off=%d", latOn, latOff)
	}
}

func TestHWPrefetcherUselessOnRandomStream(t *testing.T) {
	on := newTestHier(true)
	off := newTestHier(false)
	var latOn, latOff int64
	now := int64(0)
	// Strided-random walk: each access in a fresh 4 KiB region.
	for i := 0; i < 64; i++ {
		a := Addr(0x1000000 + uint64(i)*8192*uint64(1+i%7))
		latOn += on.Access(now, a, KindLoad).Latency
		latOff += off.Access(now, a, KindLoad).Latency
		now += 1000
	}
	// Within 5%: hardware prefetching neither helps nor hurts much.
	ratio := float64(latOn) / float64(latOff)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("irregular stream ratio = %.3f", ratio)
	}
}

func TestAvgLoadLatencyCounter(t *testing.T) {
	h := newTestHier(false)
	h.Access(0, 0x1000, KindLoad)      // 250
	h.Access(10_000, 0x1000, KindLoad) // 5
	want := (250.0 + 5.0) / 2
	if got := h.Stats.AvgLoadLatency(); got != want {
		t.Fatalf("avg load latency = %g, want %g", got, want)
	}
}

func TestStoreCountsSeparately(t *testing.T) {
	h := newTestHier(false)
	h.Access(0, 0x1000, KindStore)
	if h.Stats.Stores != 1 || h.Stats.Loads != 0 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestDRAMQueueingLatency(t *testing.T) {
	d := NewDRAM(DRAMConfig{BaseLatencyCyc: 200, PeakBandwidthBytesPerCyc: 58, QueueSensitivity: 1})
	if d.AccessLatency() != 200 {
		t.Fatalf("unloaded latency = %d", d.AccessLatency())
	}
	d.SetUtilization(0.5)
	if got := d.AccessLatency(); got != 400 {
		t.Fatalf("ρ=0.5 latency = %d, want 400", got)
	}
	d.SetUtilization(2.0) // clamped to 0.97
	if got := d.AccessLatency(); got <= 400 || got > 200*40 {
		t.Fatalf("saturated latency = %d", got)
	}
}

func TestSharedL3AcrossHierarchies(t *testing.T) {
	p := smallParams(false)
	sh := NewShared(p)
	h1 := NewHierarchy(p, sh)
	h2 := NewHierarchy(p, sh)
	h1.Access(0, 0x70000, KindLoad)
	// Constructive sharing: core 2 finds the line in shared L3.
	r := h2.Access(10_000, 0x70000, KindLoad)
	if r.Level != LevelL3 {
		t.Fatalf("second core hit %v, want L3", r.Level)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := newTestHier(true)
	h.Access(0, 0x1000, KindLoad)
	h.Reset()
	if h.Stats.Loads != 0 || h.L1.Contains(0x1000) {
		t.Fatal("reset incomplete")
	}
}
