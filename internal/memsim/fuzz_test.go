package memsim

import (
	"encoding/binary"
	"testing"

	"dlrmsim/internal/check"
)

// FuzzCacheAccess drives a small cache with an arbitrary access sequence
// and checks the structural invariants no input may break: a just-filled
// line is resident and hits, a tag is never resident twice in one set
// (check.Assert inside Fill), demand accounting matches the probe count,
// and occupancy never exceeds sets × ways.
func FuzzCacheAccess(f *testing.F) {
	f.Add([]byte{2, 1, 0, 0, 0, 1, 0, 2, 0, 1}) // tiny cache, a few lines
	f.Add([]byte{8, 32, 0xFF, 0xFF, 0, 0, 0xFF, 0xFF, 1, 0, 2, 0})
	f.Add([]byte{1, 1, 5, 0, 5, 0, 5, 0}) // direct-mapped, repeated line
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		defer func(old bool) { check.Enabled = old }(check.Enabled)
		check.Enabled = true

		ways := int(data[0]%8) + 1
		sizeKB := int64(data[1]%32) + 1
		c := NewCache(CacheConfig{Name: "fuzz", SizeBytes: sizeKB << 10, Ways: ways, LatencyCyc: 1})

		var demandProbes, hits, misses uint64
		resident := map[Addr]bool{}
		for i := 2; i+1 < len(data); i += 2 {
			// Address space bounded to a few× the cache so evictions happen.
			a := Addr(binary.LittleEndian.Uint16(data[i:])) * LineSize
			now := int64(i)
			_, hit := c.Lookup(a, true, now)
			demandProbes++
			if hit {
				hits++
				if !resident[lineOf(a)] {
					t.Fatalf("hit on %#x which was never filled (or was evicted)", a)
				}
			} else {
				misses++
				c.Fill(a, now+10, data[i]&1 == 0)
				if !c.Contains(a) {
					t.Fatalf("line %#x absent immediately after Fill", a)
				}
				if _, h := c.Lookup(a, false, now); !h {
					t.Fatalf("probe missed line %#x immediately after Fill", a)
				}
				resident[lineOf(a)] = true
			}
		}
		if c.Stats.DemandHits != hits || c.Stats.DemandMisses != misses {
			t.Fatalf("accounting drifted: stats %d/%d, observed %d/%d of %d probes",
				c.Stats.DemandHits, c.Stats.DemandMisses, hits, misses, demandProbes)
		}
		if occupied := countResident(c); occupied > c.CapacityLines() {
			t.Fatalf("occupancy %d exceeds capacity %d", occupied, c.CapacityLines())
		}
	})
}

// lineOf truncates an address to its line base.
func lineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// countResident counts valid lines by scanning every possible set slot.
func countResident(c *Cache) int64 {
	var n int64
	for _, tag := range c.tags {
		if tag != 0 {
			n++
		}
	}
	return n
}
