package memsim

import (
	"testing"
	"testing/quick"
)

func testCache(sizeBytes int64, ways int) *Cache {
	return NewCache(CacheConfig{Name: "t", SizeBytes: sizeBytes, Ways: ways, LatencyCyc: 4})
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 64 || LineAddr(130) != 128 {
		t.Fatal("LineAddr misaligned")
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := testCache(4096, 4)
	if _, hit := c.Lookup(0x1000, true, 0); hit {
		t.Fatal("hit in empty cache")
	}
	c.Fill(0x1000, 10, false)
	if _, hit := c.Lookup(0x1000, true, 20); !hit {
		t.Fatal("miss after fill")
	}
	if c.Stats.DemandHits != 1 || c.Stats.DemandMisses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 4 ways, 1 set: 256 bytes with 64B lines.
	c := testCache(256, 4)
	if c.NumSets() != 1 {
		t.Fatalf("sets = %d", c.NumSets())
	}
	for i := 0; i < 4; i++ {
		c.Fill(Addr(i*64), 0, false)
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Lookup(0, true, 0)
	c.Fill(4*64, 0, false) // evicts LRU
	if !c.Contains(0) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(64) {
		t.Fatal("LRU line survived")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats.Evictions)
	}
}

func TestCacheSetIndexing(t *testing.T) {
	// Two sets: addresses 0 and 64 land in different sets; 0 and 128 in
	// the same set.
	c := testCache(2*64*2, 2) // 2 sets, 2 ways
	if c.NumSets() != 2 {
		t.Fatalf("sets = %d", c.NumSets())
	}
	c.Fill(0, 0, false)
	c.Fill(128, 0, false)
	c.Fill(256, 0, false) // same set as 0 and 128; evicts 0
	if c.Contains(0) {
		t.Fatal("expected conflict eviction of line 0")
	}
	if !c.Contains(128) || !c.Contains(256) {
		t.Fatal("set contents wrong")
	}
}

func TestCachePrefetchAccounting(t *testing.T) {
	c := testCache(4096, 4)
	c.Fill(0x40, 100, true)
	if c.Stats.PrefetchFills != 1 {
		t.Fatalf("prefetch fills = %d", c.Stats.PrefetchFills)
	}
	// Demand touch converts the line and counts a prefetch hit.
	if _, hit := c.Lookup(0x40, true, 200); !hit {
		t.Fatal("prefetched line not resident")
	}
	if c.Stats.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d", c.Stats.PrefetchHits)
	}
	// Second touch is an ordinary hit, not another prefetch hit.
	c.Lookup(0x40, true, 300)
	if c.Stats.PrefetchHits != 1 {
		t.Fatalf("prefetch hits double-counted: %d", c.Stats.PrefetchHits)
	}
}

func TestCacheInFlightHit(t *testing.T) {
	c := testCache(4096, 4)
	c.Fill(0x80, 500, false) // fill completes at cycle 500
	if _, hit := c.Lookup(0x80, true, 100); !hit {
		t.Fatal("line absent")
	}
	if c.Stats.InFlightHits != 1 {
		t.Fatalf("in-flight hits = %d", c.Stats.InFlightHits)
	}
}

func TestCacheRefillKeepsEarliestReady(t *testing.T) {
	c := testCache(4096, 4)
	c.Fill(0xC0, 500, true)
	c.Fill(0xC0, 300, true) // second, earlier fill wins
	ready, hit := c.Lookup(0xC0, false, 0)
	if !hit || ready != 300 {
		t.Fatalf("readyAt = %d, hit = %v", ready, hit)
	}
}

func TestCacheUselessPrefetchCounting(t *testing.T) {
	c := testCache(256, 4) // 1 set
	c.Fill(0, 0, true)
	for i := 1; i <= 4; i++ {
		c.Fill(Addr(i*64), 0, false)
	}
	if c.Stats.UselessPrefILL != 1 {
		t.Fatalf("useless prefetch evictions = %d", c.Stats.UselessPrefILL)
	}
}

func TestCacheReset(t *testing.T) {
	c := testCache(4096, 4)
	c.Fill(0, 0, false)
	c.Lookup(0, true, 0)
	c.Reset()
	if c.Contains(0) {
		t.Fatal("line survived reset")
	}
	if c.Stats.DemandHits != 0 {
		t.Fatal("stats survived reset")
	}
}

func TestCacheCapacityLines(t *testing.T) {
	c := testCache(32*1024, 8)
	if c.CapacityLines() != 512 {
		t.Fatalf("capacity = %d lines", c.CapacityLines())
	}
}

// Property: a cache never holds more distinct lines than its capacity, and
// a line just filled is always resident.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := testCache(1024, 2) // 8 sets * 2 ways = 16 lines
		for _, a := range addrs {
			c.Fill(Addr(a), 0, false)
			if !c.Contains(Addr(a)) {
				return false
			}
		}
		resident := 0
		seen := map[Addr]bool{}
		for _, a := range addrs {
			la := LineAddr(Addr(a))
			if !seen[la] && c.Contains(la) {
				resident++
			}
			seen[la] = true
		}
		return resident <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCachePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero-size cache")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 0, Ways: 4})
}

func TestHitRate(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 0 {
		t.Fatal("idle hit rate should be 0")
	}
	s.DemandHits, s.DemandMisses = 3, 1
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %g", s.HitRate())
	}
}
