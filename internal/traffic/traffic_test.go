package traffic

import (
	"math"
	"strings"
	"testing"
)

// drawUntil collects every arrival strictly before horizon.
func drawUntil(t *testing.T, cfg Config, horizon float64) []float64 {
	t.Helper()
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for {
		a := s.Next()
		if a >= horizon {
			return out
		}
		out = append(out, a)
	}
}

// TestPoissonEmpiricalRate: the empirical rate of a plain Poisson stream
// is within tolerance of the configured λ, table-driven across rates and
// seeds. With ~λ·T arrivals the relative standard error is 1/sqrt(λ·T),
// so the 5% tolerance sits several sigma out at every row.
func TestPoissonEmpiricalRate(t *testing.T) {
	for _, tc := range []struct {
		rate    float64
		horizon float64
		seed    uint64
	}{
		{0.5, 40000, 1},
		{2, 10000, 1},
		{2, 10000, 7},
		{8, 2500, 0xBEEF},
		{20, 1000, 3},
	} {
		arr := drawUntil(t, Config{Model: Poisson, RatePerMs: tc.rate, Seed: tc.seed}, tc.horizon)
		got := float64(len(arr)) / tc.horizon
		if rel := math.Abs(got-tc.rate) / tc.rate; rel > 0.05 {
			t.Errorf("rate %g seed %d: empirical rate %g off by %.1f%%", tc.rate, tc.seed, got, 100*rel)
		}
	}
}

// TestMMPPEmpiricalRates splits arrivals by the stream's own burst
// windows: inside them the empirical rate must match λ·BurstFactor,
// outside plain λ — the two-state process really runs at two rates, and
// exactly where the seeded windows say.
func TestMMPPEmpiricalRates(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		cfg := Config{
			Model: MMPP, RatePerMs: 4, BurstFactor: 4,
			BurstEveryMs: 120, BurstMeanMs: 60, Seed: seed,
		}
		const horizon = 20000.0
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var inside, outside int
		for {
			a := s.Next()
			if a >= horizon {
				break
			}
			if s.burst.inside(a) {
				inside++
			} else {
				outside++
			}
		}
		var burstMs float64
		for _, w := range s.BurstWindows(horizon) {
			end := math.Min(w[1], horizon)
			if end > w[0] {
				burstMs += end - w[0]
			}
		}
		calmMs := horizon - burstMs
		if burstMs < 1000 || calmMs < 1000 {
			t.Fatalf("seed %d: degenerate split burst=%.0f ms calm=%.0f ms", seed, burstMs, calmMs)
		}
		burstRate := float64(inside) / burstMs
		calmRate := float64(outside) / calmMs
		wantBurst := cfg.RatePerMs * cfg.BurstFactor
		if rel := math.Abs(burstRate-wantBurst) / wantBurst; rel > 0.10 {
			t.Errorf("seed %d: burst-state rate %g, want %g (off %.1f%%)", seed, burstRate, wantBurst, 100*rel)
		}
		if rel := math.Abs(calmRate-cfg.RatePerMs) / cfg.RatePerMs; rel > 0.10 {
			t.Errorf("seed %d: calm-state rate %g, want %g (off %.1f%%)", seed, calmRate, cfg.RatePerMs, 100*rel)
		}
	}
}

// TestBurstWindowsSeeded: episode windows are a pure function of the
// seed — two streams agree window for window, a different seed moves
// them — and every window is positive, ordered, and disjoint.
func TestBurstWindowsSeeded(t *testing.T) {
	cfg := Config{Model: MMPP, RatePerMs: 1, BurstFactor: 3, BurstEveryMs: 100, BurstMeanMs: 40, Seed: 9}
	a, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wa, wb := a.BurstWindows(5000), b.BurstWindows(5000)
	if len(wa) == 0 {
		t.Fatal("no burst windows materialized over 5000 ms")
	}
	if len(wa) != len(wb) {
		t.Fatalf("same seed produced %d vs %d windows", len(wa), len(wb))
	}
	prevEnd := 0.0
	for i := range wa {
		if wa[i] != wb[i] {
			t.Errorf("window %d differs between same-seed streams: %v vs %v", i, wa[i], wb[i])
		}
		if wa[i][0] < prevEnd || wa[i][1] <= wa[i][0] {
			t.Errorf("window %d not ordered/positive: %v (prev end %g)", i, wa[i], prevEnd)
		}
		prevEnd = wa[i][1]
	}
	cfg.Seed = 10
	c, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wc := c.BurstWindows(5000); len(wc) == len(wa) && wc[0] == wa[0] {
		t.Error("different seed reproduced the first burst window")
	}
}

// TestInterArrivalMonotone: arrivals are strictly increasing and finite
// for every model, across seeds.
func TestInterArrivalMonotone(t *testing.T) {
	configs := []Config{
		{Model: Poisson, RatePerMs: 3},
		{Model: MMPP, RatePerMs: 3, BurstFactor: 5, BurstEveryMs: 50, BurstMeanMs: 20},
		{Model: Poisson, RatePerMs: 3, DayMs: 500, DiurnalAmp: 0.7,
			FlashEveryMs: 400, FlashMeanMs: 50, FlashFactor: 6},
	}
	for _, cfg := range configs {
		for _, seed := range []uint64{1, 2, 0xD1CE} {
			cfg.Seed = seed
			s, err := NewStream(cfg)
			if err != nil {
				t.Fatal(err)
			}
			prev := 0.0
			for i := 0; i < 5000; i++ {
				a := s.Next()
				if !(a > prev) || math.IsInf(a, 0) || math.IsNaN(a) {
					t.Fatalf("%v seed %d: arrival %d = %g not after %g", cfg.Model, seed, i, a, prev)
				}
				prev = a
			}
		}
	}
}

// TestDiurnalShape: the rate function hits its trough at t = 0 and its
// peak mid-day, and the arrival mass follows — the mid-day half of a day
// carries more arrivals than the overnight half.
func TestDiurnalShape(t *testing.T) {
	cfg := Config{Model: Poisson, RatePerMs: 5, DayMs: 4000, DiurnalAmp: 0.6, Seed: 1}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.RateAt(0), cfg.RatePerMs*(1-cfg.DiurnalAmp); math.Abs(got-want) > 1e-12 {
		t.Errorf("trough rate %g, want %g", got, want)
	}
	if got, want := s.RateAt(cfg.DayMs/2), cfg.RatePerMs*(1+cfg.DiurnalAmp); math.Abs(got-want) > 1e-12 {
		t.Errorf("peak rate %g, want %g", got, want)
	}
	if got := s.PeakRate(); got < cfg.RatePerMs*(1+cfg.DiurnalAmp) {
		t.Errorf("peak envelope %g below the diurnal maximum", got)
	}
	arr := drawUntil(t, cfg, cfg.DayMs)
	var night, day int
	for _, a := range arr {
		if a < cfg.DayMs/4 || a >= 3*cfg.DayMs/4 {
			night++
		} else {
			day++
		}
	}
	if day <= night {
		t.Errorf("mid-day half carried %d arrivals vs %d overnight; diurnal ramp inverted", day, night)
	}
}

// TestStreamDeterministicAndQueryIndependent: two same-config streams are
// arrival-for-arrival identical, and interleaving RateAt/window queries
// (which lazily materialize episode state) must not perturb the sequence.
func TestStreamDeterministicAndQueryIndependent(t *testing.T) {
	cfg := Config{
		Model: MMPP, RatePerMs: 2, BurstFactor: 3, BurstEveryMs: 80, BurstMeanMs: 30,
		DayMs: 1000, DiurnalAmp: 0.4, FlashEveryMs: 600, FlashMeanMs: 40, FlashFactor: 4,
		Seed: 0xFEED,
	}
	a, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.RateAt(5000) // force deep episode materialization up front
	b.BurstWindows(2000)
	b.FlashWindows(2000)
	for i := 0; i < 4000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("arrival %d diverged: %g vs %g", i, x, y)
		}
		if i%97 == 0 {
			b.RateAt(x * 1.5) // interleaved non-monotone queries
		}
	}
}

// TestConfigValidate: every violation is reported, and misplaced knobs
// for disabled features are errors rather than silently ignored.
func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero rate", Config{Model: Poisson}, "arrival rate"},
		{"bad model", Config{Model: Model(9), RatePerMs: 1}, "invalid arrival model"},
		{"mmpp without factor", Config{Model: MMPP, RatePerMs: 1, BurstEveryMs: 1, BurstMeanMs: 1}, "burst factor"},
		{"mmpp without dwells", Config{Model: MMPP, RatePerMs: 1, BurstFactor: 2}, "dwell times"},
		{"poisson with burst knobs", Config{Model: Poisson, RatePerMs: 1, BurstFactor: 2}, "need the mmpp"},
		{"amp out of range", Config{Model: Poisson, RatePerMs: 1, DayMs: 10, DiurnalAmp: 1}, "amplitude"},
		{"amp without day", Config{Model: Poisson, RatePerMs: 1, DiurnalAmp: 0.5}, "day period"},
		{"negative day", Config{Model: Poisson, RatePerMs: 1, DayMs: -5}, "diurnal period"},
		{"flash without duration", Config{Model: Poisson, RatePerMs: 1, FlashEveryMs: 5, FlashFactor: 2}, "mean duration"},
		{"flash factor below 1", Config{Model: Poisson, RatePerMs: 1, FlashEveryMs: 5, FlashMeanMs: 1, FlashFactor: 0.5}, "flash factor"},
		{"flash knobs without interval", Config{Model: Poisson, RatePerMs: 1, FlashFactor: 2}, "flash interval"},
	} {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
	good := Config{Model: MMPP, RatePerMs: 1, BurstFactor: 2, BurstEveryMs: 10, BurstMeanMs: 5,
		DayMs: 100, DiurnalAmp: 0.3, FlashEveryMs: 50, FlashMeanMs: 5, FlashFactor: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("full valid config rejected: %v", err)
	}
}

// TestParseModel round-trips the CLI spellings.
func TestParseModel(t *testing.T) {
	for _, m := range []Model{Poisson, MMPP} {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("weibull"); err == nil {
		t.Error("accepted unknown model")
	}
}
