package traffic

import (
	"math"
	"testing"
)

// FuzzArrivalStream throws arbitrary knob combinations at the stream
// constructor. Accepted configs must honor the stream invariants the
// simulator depends on: strictly increasing finite arrivals under the
// peak envelope's rate, ordered disjoint episode windows, and seed
// reproducibility.
func FuzzArrivalStream(f *testing.F) {
	f.Add(uint8(0), 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint64(1))
	f.Add(uint8(1), 4.0, 4.0, 120.0, 60.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint64(7))
	f.Add(uint8(0), 1.0, 0.0, 0.0, 0.0, 2000.0, 0.6, 500.0, 40.0, 5.0, uint64(0xBEEF))
	f.Add(uint8(1), 0.5, 8.0, 50.0, 10.0, 1000.0, 0.9, 300.0, 20.0, 2.0, uint64(42))
	f.Fuzz(func(t *testing.T, model uint8, rate, bFactor, bEvery, bMean,
		day, amp, fEvery, fMean, fFactor float64, seed uint64) {
		cfg := Config{
			Model: Model(model % 2), RatePerMs: rate,
			BurstFactor: bFactor, BurstEveryMs: bEvery, BurstMeanMs: bMean,
			DayMs: day, DiurnalAmp: amp,
			FlashEveryMs: fEvery, FlashMeanMs: fMean, FlashFactor: fFactor,
			Seed: seed,
		}
		s, err := NewStream(cfg)
		if err != nil {
			return // rejected configs are fine; invariants only bind accepted ones
		}
		twin, err := NewStream(cfg)
		if err != nil {
			t.Fatalf("config accepted then rejected: %v", err)
		}
		prev := 0.0
		for i := 0; i < 200; i++ {
			a := s.Next()
			if !(a > prev) || math.IsInf(a, 0) || math.IsNaN(a) {
				t.Fatalf("arrival %d = %g not strictly after %g", i, a, prev)
			}
			if b := twin.Next(); b != a {
				t.Fatalf("same-seed streams diverged at arrival %d: %g vs %g", i, a, b)
			}
			if r := s.RateAt(a); r < 0 || r > s.PeakRate()*(1+1e-12) {
				t.Fatalf("rate %g at t=%g escapes [0, peak=%g]", r, a, s.PeakRate())
			}
			prev = a
		}
		for _, win := range [][][2]float64{s.BurstWindows(prev), s.FlashWindows(prev)} {
			end := 0.0
			for i, w := range win {
				if w[1] <= w[0] || w[0] < end {
					t.Fatalf("window %d not positive/disjoint: %v (prev end %g)", i, w, end)
				}
				end = w[1]
			}
		}
	})
}
