package traffic

// The synthetic user population. Each arrival is attributed to a user id
// drawn from a population of (potentially) millions: with probability
// RevisitProb the arrival revisits a recently active user (drawn from a
// bounded recency ring, so recently frequent users are proportionally
// more likely to return — the rich-get-richer recency real request logs
// show), otherwise a fresh user is drawn uniformly from the population.
//
// Revisits are what make the population matter to the serving tier: every
// user owns a small personal profile of embedding rows (ProfileSize
// stateless Zipf draws per table, so the *marginal* row distribution of
// the whole stream keeps the trace tier's hotness class), and a fraction
// Affinity of the user's lookups come from that profile. A revisiting
// user therefore re-touches rows its earlier queries already pulled
// through its home node — the per-user embedding locality BagPipe-style
// caching exploits, layered on top of global Zipf hotness.
//
// Substitution statement: real per-user locality comes from stable user
// features re-embedded on every request; we substitute a per-user profile
// of Zipf-distributed rows (pure function of (Seed, user, table, slot)
// via stats.SplitSeed) and a revisit process over a recency ring. Both
// are deterministic, so the whole query stream remains a pure function of
// the configs.

import (
	"errors"
	"fmt"

	"dlrmsim/internal/stats"
)

// population defaults.
const (
	defaultRecentWindow = 512
	defaultProfileSize  = 16
)

// saltProfile derives per-user profile streams.
const saltProfile uint64 = 0x9806F11E

// Population describes the synthetic user base behind an arrival stream.
type Population struct {
	// Users is the number of distinct user ids.
	Users int
	// RevisitProb is the probability an arrival revisits a recently
	// active user instead of drawing a fresh one, in [0, 1].
	RevisitProb float64
	// RecentWindow bounds the recency ring revisits draw from (0 means
	// the 512-entry default).
	RecentWindow int
	// ProfileSize is each user's personal rank count per table (0 means
	// the 16-slot default).
	ProfileSize int
	// Affinity is the probability one lookup draws from the user's
	// profile instead of the global hotness distribution, in [0, 1].
	Affinity float64
	// Seed derives the user sequence and every profile stream.
	Seed uint64
}

// Validate reports every violation in the population config at once.
func (p Population) Validate() error {
	var errs []error
	if p.Users < 1 {
		errs = append(errs, fmt.Errorf("traffic: %d users", p.Users))
	}
	if p.RevisitProb < 0 || p.RevisitProb > 1 {
		errs = append(errs, fmt.Errorf("traffic: revisit probability %g outside [0,1]", p.RevisitProb))
	}
	if p.RecentWindow < 0 {
		errs = append(errs, fmt.Errorf("traffic: negative recency window %d", p.RecentWindow))
	}
	if p.ProfileSize < 0 {
		errs = append(errs, fmt.Errorf("traffic: negative profile size %d", p.ProfileSize))
	}
	if p.Affinity < 0 || p.Affinity > 1 {
		errs = append(errs, fmt.Errorf("traffic: profile affinity %g outside [0,1]", p.Affinity))
	}
	return errors.Join(errs...)
}

// withDefaults fills the zero-means-default fields.
func (p Population) withDefaults() Population {
	if p.RecentWindow == 0 {
		p.RecentWindow = defaultRecentWindow
	}
	if p.ProfileSize == 0 {
		p.ProfileSize = defaultProfileSize
	}
	return p
}

// Visitors attributes an arrival sequence to users. Not safe for
// concurrent use; build one per simulation.
type Visitors struct {
	pop    Population
	rng    stats.RNG
	ring   []uint64 // last RecentWindow arrivals' users (with repeats)
	next   int      // ring write cursor
	filled int      // entries populated so far
	visits map[uint64]int
}

// NewVisitors validates pop and returns a fresh visitor sequence.
func NewVisitors(pop Population) (*Visitors, error) {
	if err := pop.Validate(); err != nil {
		return nil, err
	}
	pop = pop.withDefaults()
	return &Visitors{
		pop:    pop,
		rng:    stats.SeededRNG(stats.SplitSeed(pop.Seed^0x0517E5, 0)),
		ring:   make([]uint64, pop.RecentWindow),
		visits: map[uint64]int{},
	}, nil
}

// Next draws the next arrival's user and returns the user's visit count
// including this arrival (1 = first visit). A fresh uniform draw that
// happens to collide with an earlier user still counts as a revisit —
// what matters downstream is whether the user's profile rows are warm.
func (v *Visitors) Next() (user uint64, visit int) {
	if v.filled > 0 && v.rng.Float64() < v.pop.RevisitProb {
		user = v.ring[v.rng.Intn(v.filled)]
	} else {
		user = uint64(v.rng.Intn(v.pop.Users))
	}
	v.visits[user]++
	v.ring[v.next] = user
	v.next = (v.next + 1) % len(v.ring)
	if v.filled < len(v.ring) {
		v.filled++
	}
	return user, v.visits[user]
}

// ProfileSize returns the effective (default-filled) profile size.
func (v *Visitors) ProfileSize() int { return v.pop.ProfileSize }

// Affinity returns the configured profile affinity.
func (v *Visitors) Affinity() float64 { return v.pop.Affinity }

// ProfileStream returns the stateless generator that draws one profile
// slot's rank for (user, table, slot). Consumers sample their hotness
// distribution with it (Zipf, uniform, ...), so the marginal distribution
// of profile lookups matches fresh lookups while staying a pure function
// of (Seed, user, table, slot).
func (p Population) ProfileStream(user uint64, table, slot int) stats.RNG {
	p = p.withDefaults()
	key := stats.SplitSeed(p.Seed^saltProfile, user)
	return stats.SeededRNG(stats.SplitSeed(key, uint64(table*p.ProfileSize+slot)))
}
