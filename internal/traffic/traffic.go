// Package traffic generates deterministic open-loop query arrival streams
// for the cluster serving tier: Poisson and Markov-modulated (MMPP)
// processes with diurnal ramps and flash-crowd bursts, plus a synthetic
// user population whose revisit behavior layers per-user embedding
// locality on the trace tier's Zipf hotness classes.
//
// "Open-loop" means arrivals are independent of the system's state — the
// load a production fleet faces, where users do not wait for each other's
// responses. Every query in the closed-loop simulators is drawn from a
// fixed count at a fixed mean rate; here the instantaneous rate is a
// deterministic function of simulated time,
//
//	rate(t) = RatePerMs · diurnal(t) · burst(t) · flash(t),
//
// and arrivals are drawn from the corresponding non-homogeneous Poisson
// process by thinning: candidates at the peak rate, each accepted with
// probability rate(t)/peak. Burst and flash episodes are alternating
// exponential on/off windows materialized from dedicated split streams,
// so every window boundary — and therefore every arrival — is a pure
// function of Config.Seed via stats.SplitSeed. Two streams built from the
// same config emit byte-identical arrival sequences no matter what else
// runs in the process, which is the contract the experiment runner's
// -workers byte-identity guarantee rests on.
package traffic

import (
	"errors"
	"fmt"
	"math"

	"dlrmsim/internal/stats"
)

// Model selects the arrival process family.
type Model int

const (
	// Poisson is a (possibly diurnally/flash-modulated) Poisson process
	// with no burst state.
	Poisson Model = iota
	// MMPP is a two-state Markov-modulated Poisson process: the rate
	// multiplies by BurstFactor during exponentially distributed burst
	// dwells separated by exponentially distributed calm dwells.
	MMPP
)

// String returns the model's CLI spelling.
func (m Model) String() string {
	switch m {
	case Poisson:
		return "poisson"
	case MMPP:
		return "mmpp"
	default:
		return "invalid"
	}
}

// ParseModel resolves an arrival model from its CLI spelling.
func ParseModel(name string) (Model, error) {
	switch name {
	case "poisson":
		return Poisson, nil
	case "mmpp":
		return MMPP, nil
	}
	return 0, fmt.Errorf("traffic: unknown arrival model %q", name)
}

// Config describes one arrival stream. RatePerMs is the base rate; the
// modulation terms are all optional and multiply it.
type Config struct {
	// Model is the process family (Poisson or MMPP).
	Model Model
	// RatePerMs is the base mean arrival rate in queries per simulated ms.
	RatePerMs float64
	// BurstFactor multiplies the rate while the MMPP burst state is
	// active (> 1; MMPP only).
	BurstFactor float64
	// BurstEveryMs is the mean calm dwell between burst episodes (MMPP
	// only).
	BurstEveryMs float64
	// BurstMeanMs is the mean burst dwell (MMPP only).
	BurstMeanMs float64
	// DayMs is the diurnal period; the rate ramps as
	// 1 - DiurnalAmp·cos(2πt/DayMs), so a day starts at its overnight
	// trough and peaks mid-period. 0 disables the ramp.
	DayMs float64
	// DiurnalAmp is the diurnal swing in [0, 1): peak/trough rates are
	// (1±Amp) times the base.
	DiurnalAmp float64
	// FlashEveryMs is the mean gap between flash-crowd episodes (0
	// disables them).
	FlashEveryMs float64
	// FlashMeanMs is the mean flash-crowd duration.
	FlashMeanMs float64
	// FlashFactor multiplies the rate during a flash crowd (>= 1).
	FlashFactor float64
	// Seed derives every stream (candidates, thinning coins, episode
	// windows) via stats.SplitSeed.
	Seed uint64
}

// seed salts for the stream's independent split streams.
const (
	saltArrival uint64 = 0xA551F
	saltBurst   uint64 = 0xB0257
	saltFlash   uint64 = 0xF1A58
)

// Validate reports every violation in the stream config at once. Fields
// of disabled features must be zero, so a flag typo (burst knobs without
// -arrivals mmpp, flash duration without a flash interval) surfaces as an
// error instead of being silently ignored.
func (c Config) Validate() error {
	var errs []error
	if c.Model != Poisson && c.Model != MMPP {
		errs = append(errs, fmt.Errorf("traffic: invalid arrival model %d", c.Model))
	}
	if c.RatePerMs <= 0 || math.IsInf(c.RatePerMs, 0) || math.IsNaN(c.RatePerMs) {
		errs = append(errs, fmt.Errorf("traffic: non-positive arrival rate %g/ms", c.RatePerMs))
	}
	switch c.Model {
	case MMPP:
		if c.BurstFactor <= 1 {
			errs = append(errs, fmt.Errorf("traffic: MMPP burst factor %g (want > 1)", c.BurstFactor))
		}
		if c.BurstEveryMs <= 0 || c.BurstMeanMs <= 0 {
			errs = append(errs, fmt.Errorf("traffic: MMPP dwell times must be positive (calm %g ms, burst %g ms)",
				c.BurstEveryMs, c.BurstMeanMs))
		}
	default:
		if c.BurstFactor != 0 || c.BurstEveryMs != 0 || c.BurstMeanMs != 0 {
			errs = append(errs, fmt.Errorf("traffic: burst parameters need the mmpp arrival model"))
		}
	}
	if c.DiurnalAmp < 0 || c.DiurnalAmp >= 1 {
		errs = append(errs, fmt.Errorf("traffic: diurnal amplitude %g outside [0,1)", c.DiurnalAmp))
	}
	if c.DayMs < 0 {
		errs = append(errs, fmt.Errorf("traffic: negative diurnal period %g ms", c.DayMs))
	}
	if c.DiurnalAmp > 0 && c.DayMs <= 0 {
		errs = append(errs, fmt.Errorf("traffic: diurnal amplitude needs a positive day period"))
	}
	if c.FlashEveryMs < 0 {
		errs = append(errs, fmt.Errorf("traffic: negative flash interval %g ms", c.FlashEveryMs))
	}
	if c.FlashEveryMs > 0 {
		if c.FlashMeanMs <= 0 {
			errs = append(errs, fmt.Errorf("traffic: flash crowds need a positive mean duration"))
		}
		if c.FlashFactor < 1 {
			errs = append(errs, fmt.Errorf("traffic: flash factor %g < 1", c.FlashFactor))
		}
	} else if c.FlashMeanMs != 0 || c.FlashFactor != 0 {
		errs = append(errs, fmt.Errorf("traffic: flash parameters need a positive flash interval"))
	}
	return errors.Join(errs...)
}

// episodes is a lazily materialized alternating on/off window timeline —
// the same machinery the cluster fault model uses for slowdown and outage
// tracks, rebuilt here so episode boundaries are a pure function of
// (seed, salt) independent of any consumer.
type episodes struct {
	rng     stats.RNG
	gapMean float64
	durMean float64
	win     [][2]float64
	horizon float64
}

func newEpisodes(seed, salt uint64, gapMean, durMean float64) *episodes {
	return &episodes{
		rng:     stats.SeededRNG(stats.SplitSeed(seed^salt, 0)),
		gapMean: gapMean,
		durMean: durMean,
	}
}

// extend materializes windows until the timeline covers t.
func (e *episodes) extend(t float64) {
	for e.horizon <= t {
		start := e.horizon + e.rng.ExpFloat64()*e.gapMean
		end := start + e.rng.ExpFloat64()*e.durMean
		e.win = append(e.win, [2]float64{start, end})
		e.horizon = end
	}
}

// inside reports whether t falls in an episode window (binary search over
// the materialized timeline, so non-monotone queries are answered too).
func (e *episodes) inside(t float64) bool {
	e.extend(t)
	lo, hi := 0, len(e.win)
	for lo < hi { // first window with start > t
		mid := (lo + hi) / 2
		if e.win[mid][0] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo > 0 && t < e.win[lo-1][1]
}

// windows returns every episode window starting before until.
func (e *episodes) windows(until float64) [][2]float64 {
	e.extend(until)
	out := make([][2]float64, 0, len(e.win))
	for _, w := range e.win {
		if w[0] >= until {
			break
		}
		out = append(out, w)
	}
	return out
}

// Stream draws one arrival sequence. Not safe for concurrent use; build
// one Stream per simulation.
type Stream struct {
	cfg   Config
	rng   stats.RNG // candidate gaps and thinning coins
	now   float64
	peak  float64
	burst *episodes // nil unless MMPP
	flash *episodes // nil unless flash crowds are on
}

// NewStream validates cfg and returns a fresh stream positioned at t = 0.
func NewStream(cfg Config) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Stream{
		cfg:  cfg,
		rng:  stats.SeededRNG(stats.SplitSeed(cfg.Seed^saltArrival, 0)),
		peak: cfg.RatePerMs * (1 + cfg.DiurnalAmp),
	}
	if cfg.Model == MMPP {
		s.peak *= cfg.BurstFactor
		s.burst = newEpisodes(cfg.Seed, saltBurst, cfg.BurstEveryMs, cfg.BurstMeanMs)
	}
	if cfg.FlashEveryMs > 0 {
		s.peak *= cfg.FlashFactor
		s.flash = newEpisodes(cfg.Seed, saltFlash, cfg.FlashEveryMs, cfg.FlashMeanMs)
	}
	return s, nil
}

// RateAt returns the instantaneous arrival rate at t in queries per ms.
func (s *Stream) RateAt(t float64) float64 {
	rate := s.cfg.RatePerMs
	if s.cfg.DiurnalAmp > 0 {
		rate *= 1 - s.cfg.DiurnalAmp*math.Cos(2*math.Pi*t/s.cfg.DayMs)
	}
	if s.burst != nil && s.burst.inside(t) {
		rate *= s.cfg.BurstFactor
	}
	if s.flash != nil && s.flash.inside(t) {
		rate *= s.cfg.FlashFactor
	}
	return rate
}

// PeakRate returns the thinning envelope — the supremum of RateAt.
func (s *Stream) PeakRate() float64 { return s.peak }

// Next returns the next arrival time. Arrivals are strictly increasing
// (exponential gaps are almost surely positive) and unbounded; the caller
// decides when the stream's horizon is reached.
func (s *Stream) Next() float64 {
	for {
		s.now += s.rng.ExpFloat64() / s.peak
		if s.rng.Float64()*s.peak < s.RateAt(s.now) {
			return s.now
		}
	}
}

// BurstWindows returns the MMPP burst episodes starting before until
// (nil for Poisson streams). The windows are a pure function of the
// config seed — "bursts occur exactly where seeded".
func (s *Stream) BurstWindows(until float64) [][2]float64 {
	if s.burst == nil {
		return nil
	}
	return s.burst.windows(until)
}

// FlashWindows returns the flash-crowd episodes starting before until
// (nil when flash crowds are off).
func (s *Stream) FlashWindows(until float64) [][2]float64 {
	if s.flash == nil {
		return nil
	}
	return s.flash.windows(until)
}
