package traffic

import (
	"math"
	"strings"
	"testing"

	"dlrmsim/internal/stats"
)

// TestVisitorsDeterministic: the user sequence is a pure function of the
// population config.
func TestVisitorsDeterministic(t *testing.T) {
	pop := Population{Users: 1_000_000, RevisitProb: 0.6, Affinity: 0.5, Seed: 3}
	a, err := NewVisitors(pop)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewVisitors(pop)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		ua, va := a.Next()
		ub, vb := b.Next()
		if ua != ub || va != vb {
			t.Fatalf("arrival %d diverged: (%d,%d) vs (%d,%d)", i, ua, va, ub, vb)
		}
	}
}

// TestRevisitFraction: once the recency ring fills, the fraction of
// arrivals that are revisits tracks RevisitProb (fresh draws from a
// million-user population essentially never collide).
func TestRevisitFraction(t *testing.T) {
	for _, p := range []float64{0, 0.3, 0.7} {
		v, err := NewVisitors(Population{Users: 2_000_000, RevisitProb: p, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		const draws = 20000
		revisits := 0
		for i := 0; i < draws; i++ {
			if _, visit := v.Next(); visit > 1 {
				revisits++
			}
		}
		got := float64(revisits) / draws
		if math.Abs(got-p) > 0.02 {
			t.Errorf("RevisitProb %g: revisit fraction %g", p, got)
		}
	}
}

// TestRevisitsConcentrateUsers: with heavy revisiting, far fewer distinct
// users appear than arrivals — the per-user locality the serving tier's
// warm-profile path depends on.
func TestRevisitsConcentrateUsers(t *testing.T) {
	v, err := NewVisitors(Population{Users: 5_000_000, RevisitProb: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const draws = 10000
	users := map[uint64]bool{}
	for i := 0; i < draws; i++ {
		u, _ := v.Next()
		users[u] = true
	}
	if len(users) > draws/2 {
		t.Errorf("%d distinct users over %d arrivals; revisits not concentrating", len(users), draws)
	}
}

// TestProfileStreamPure: a profile slot's stream depends on exactly
// (user, table, slot) — identical keys agree, any coordinate change
// moves the draw.
func TestProfileStreamPure(t *testing.T) {
	pop := Population{Users: 100, Seed: 5}
	base := pop.ProfileStream(42, 3, 7)
	same := pop.ProfileStream(42, 3, 7)
	if a, b := base.Uint64(), same.Uint64(); a != b {
		t.Fatalf("same key diverged: %d vs %d", a, b)
	}
	first := func(r stats.RNG) uint64 { return r.Uint64() }
	ref := first(pop.ProfileStream(42, 3, 7))
	for _, alt := range []stats.RNG{
		pop.ProfileStream(43, 3, 7),
		pop.ProfileStream(42, 4, 7),
		pop.ProfileStream(42, 3, 8),
	} {
		if first(alt) == ref {
			t.Error("neighboring profile key reproduced the draw")
		}
	}
}

// TestPopulationValidate: all violations in one report; the zero-means-
// default fields pass through Validate untouched.
func TestPopulationValidate(t *testing.T) {
	bad := Population{Users: 0, RevisitProb: -1, RecentWindow: -2, ProfileSize: -3, Affinity: 2}
	err := bad.Validate()
	if err == nil {
		t.Fatal("accepted a population with five violations")
	}
	for _, want := range []string{"users", "revisit probability", "recency window", "profile size", "affinity"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
	good := Population{Users: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("minimal population rejected: %v", err)
	}
	if good.RecentWindow != 0 || good.ProfileSize != 0 {
		t.Error("Validate mutated zero-means-default fields")
	}
	v, err := NewVisitors(good)
	if err != nil {
		t.Fatal(err)
	}
	if v.ProfileSize() != defaultProfileSize || len(v.ring) != defaultRecentWindow {
		t.Errorf("defaults not applied: profile %d ring %d", v.ProfileSize(), len(v.ring))
	}
}
