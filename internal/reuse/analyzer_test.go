package reuse

import (
	"testing"
	"testing/quick"

	"dlrmsim/internal/stats"
)

// naiveStackDistance is the O(n²) reference implementation.
func naiveStackDistance(traceKeys []uint64) []int64 {
	out := make([]int64, len(traceKeys))
	for i, k := range traceKeys {
		last := -1
		for j := i - 1; j >= 0; j-- {
			if traceKeys[j] == k {
				last = j
				break
			}
		}
		if last == -1 {
			out[i] = ColdDistance
			continue
		}
		distinct := map[uint64]struct{}{}
		for j := last + 1; j < i; j++ {
			distinct[traceKeys[j]] = struct{}{}
		}
		out[i] = int64(len(distinct))
	}
	return out
}

func TestAnalyzerSimpleSequence(t *testing.T) {
	a := NewAnalyzer(0)
	// A B C A: A's second access has distance 2 (B, C touched between).
	keys := []uint64{1, 2, 3, 1}
	want := []int64{ColdDistance, ColdDistance, ColdDistance, 2}
	for i, k := range keys {
		if got := a.Access(k); got != want[i] {
			t.Fatalf("access %d: distance %d, want %d", i, got, want[i])
		}
	}
}

func TestAnalyzerImmediateReuse(t *testing.T) {
	a := NewAnalyzer(0)
	a.Access(7)
	if got := a.Access(7); got != 0 {
		t.Fatalf("back-to-back reuse distance = %d", got)
	}
}

func TestAnalyzerRepeatedPattern(t *testing.T) {
	a := NewAnalyzer(0)
	// Cyclic pattern of 3 keys: steady-state distance is 2.
	keys := []uint64{1, 2, 3, 1, 2, 3, 1, 2, 3}
	var dists []int64
	for _, k := range keys {
		dists = append(dists, a.Access(k))
	}
	for i := 3; i < len(dists); i++ {
		if dists[i] != 2 {
			t.Fatalf("cyclic distance at %d = %d, want 2", i, dists[i])
		}
	}
}

func TestAnalyzerMatchesNaive(t *testing.T) {
	f := func(raw []uint8) bool {
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r % 16) // force collisions
		}
		a := NewAnalyzer(len(keys))
		want := naiveStackDistance(keys)
		for i, k := range keys {
			if a.Access(k) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzerColdMissAccounting(t *testing.T) {
	a := NewAnalyzer(0)
	for _, k := range []uint64{1, 2, 3, 1, 2, 3} {
		a.Access(k)
	}
	if a.ColdMisses() != 3 {
		t.Fatalf("cold misses = %d", a.ColdMisses())
	}
	if a.ColdMissFraction() != 0.5 {
		t.Fatalf("cold fraction = %g", a.ColdMissFraction())
	}
	if a.Accesses() != 6 {
		t.Fatalf("accesses = %d", a.Accesses())
	}
}

func TestAnalyzerHitRateLRUEquivalence(t *testing.T) {
	// Cyclic over 4 keys: an LRU cache of 4 blocks hits everything after
	// warmup, a cache of 3 blocks hits nothing (classic LRU thrash).
	a := NewAnalyzer(0)
	tr := NewCapacityTracker([]int64{3, 4})
	for i := 0; i < 400; i++ {
		tr.Record(a.Access(uint64(i % 4)))
	}
	if hr := tr.HitRate(0); hr != 0 {
		t.Fatalf("3-block LRU hit rate = %g, want 0 (thrash)", hr)
	}
	if hr := tr.HitRate(1); hr < 0.98 {
		t.Fatalf("4-block LRU hit rate = %g, want ~0.99", hr)
	}
}

func TestCapacityTrackerColdFraction(t *testing.T) {
	tr := NewCapacityTracker([]int64{8})
	tr.Record(ColdDistance)
	tr.Record(2)
	if tr.ColdFraction() != 0.5 {
		t.Fatalf("cold fraction = %g", tr.ColdFraction())
	}
	if tr.Total() != 2 {
		t.Fatalf("total = %d", tr.Total())
	}
	if tr.HitRate(0) != 0.5 {
		t.Fatalf("hit rate = %g", tr.HitRate(0))
	}
}

func TestFenwickBasics(t *testing.T) {
	f := newFenwick(8)
	f.add(3, 1)
	f.add(5, 1)
	if f.rangeSum(1, 8) != 2 {
		t.Fatalf("sum = %d", f.rangeSum(1, 8))
	}
	if f.rangeSum(4, 8) != 1 {
		t.Fatalf("tail sum = %d", f.rangeSum(4, 8))
	}
	f.add(3, -1)
	if f.rangeSum(1, 4) != 0 {
		t.Fatalf("after removal = %d", f.rangeSum(1, 4))
	}
}

func TestFenwickGrowth(t *testing.T) {
	f := newFenwick(2)
	f.add(1000, 1)
	if f.rangeSum(1, 2000) != 1 {
		t.Fatal("growth lost the value")
	}
	if f.rangeSum(5000, 6000) != 0 {
		t.Fatal("out-of-range sum nonzero")
	}
}

func TestHistogramHitRateRoughlyMatchesTracker(t *testing.T) {
	// The log-bucketed estimate should be within a few points of exact.
	a := NewAnalyzer(0)
	tr := NewCapacityTracker([]int64{64})
	rng := stats.NewRNG(5)
	for i := 0; i < 20000; i++ {
		tr.Record(a.Access(uint64(rng.Intn(200))))
	}
	exact := tr.HitRate(0)
	est := a.HitRate(64)
	if diff := exact - est; diff > 0.1 || diff < -0.1 {
		t.Fatalf("exact %.3f vs histogram estimate %.3f", exact, est)
	}
}
