// Package reuse implements the paper's reuse-distance model (Fig. 6):
// exact LRU stack distances over an index-access trace, histograms of
// those distances, and the projection from cache capacity (in embedding
// vectors) to hit rate, including cold-miss accounting.
package reuse

import "math/bits"

// fenwick is a binary indexed tree over access timestamps; prefix sums
// count how many distinct keys were touched in a time range, which is the
// core of the O(n log n) stack-distance algorithm (Olken's method with a
// BIT instead of a balanced tree).
//
// The capacity (len(tree)-1) is always a power of two so the tree can be
// doubled in place: when extending from P to 2P, every new internal node
// except 2P covers only new (empty) positions, and node 2P covers [1, 2P],
// whose current sum is sum(P).
type fenwick struct {
	tree []int32
}

func newFenwick(capacity int) *fenwick {
	if capacity < 1 {
		capacity = 1
	}
	p := 1 << bits.Len(uint(capacity-1))
	if p < capacity {
		p <<= 1
	}
	return &fenwick{tree: make([]int32, p+1)}
}

// grow doubles the capacity until 1-based position n exists.
func (f *fenwick) grow(n int) {
	for len(f.tree)-1 < n {
		p := len(f.tree) - 1
		total := f.sum(p)
		f.tree = append(f.tree, make([]int32, p)...)
		f.tree[2*p] = total
	}
}

// add applies delta at 1-based position i.
func (f *fenwick) add(i int, delta int32) {
	f.grow(i)
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over [1, i].
func (f *fenwick) sum(i int) int32 {
	if i > len(f.tree)-1 {
		i = len(f.tree) - 1
	}
	var s int32
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum over [lo, hi] (1-based, inclusive).
func (f *fenwick) rangeSum(lo, hi int) int32 {
	if hi < lo {
		return 0
	}
	return f.sum(hi) - f.sum(lo-1)
}
