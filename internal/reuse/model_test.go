package reuse

import (
	"testing"

	"dlrmsim/internal/trace"
)

func modelDataset(t *testing.T, h trace.Hotness) *trace.Dataset {
	t.Helper()
	d, err := trace.NewDataset(trace.Config{
		Hotness: h, Rows: 20_000, Tables: 4, BatchSize: 16,
		LookupsPerSample: 20, Batches: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func modelConfig(cores int) ModelConfig {
	return ModelConfig{
		EmbeddingDim: 128,
		Cores:        cores,
		CacheBytes:   []int64{32 << 10, 1 << 20, 35 << 20},
		CacheNames:   []string{"L1D", "L2", "L3"},
	}
}

func TestModelRunBasics(t *testing.T) {
	res, err := Run(modelDataset(t, trace.MediumHot), modelConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(16 * 20 * 4 * 8) // samples × lookups × tables × batches
	if res.Accesses != want {
		t.Fatalf("accesses = %d, want %d", res.Accesses, want)
	}
	// Capacity conversion: 32 KiB / 512 B per vector = 64 vectors.
	if res.VectorCapacity["L1D"] != 64 {
		t.Fatalf("L1D vector capacity = %d", res.VectorCapacity["L1D"])
	}
	if res.ColdMissFraction <= 0 || res.ColdMissFraction >= 1 {
		t.Fatalf("cold fraction = %g", res.ColdMissFraction)
	}
}

func TestModelHitRatesMonotoneInCapacity(t *testing.T) {
	for _, h := range trace.ProductionHotness {
		res, err := Run(modelDataset(t, h), modelConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		l1, l2, l3 := res.HitRates["L1D"], res.HitRates["L2"], res.HitRates["L3"]
		if !(l1 <= l2 && l2 <= l3) {
			t.Fatalf("%v: hit rates not monotone: %.3f %.3f %.3f", h, l1, l2, l3)
		}
	}
}

func TestModelHotterMeansFewerColdMisses(t *testing.T) {
	hi, err := Run(modelDataset(t, trace.HighHot), modelConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Run(modelDataset(t, trace.LowHot), modelConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if hi.ColdMissFraction >= lo.ColdMissFraction {
		t.Fatalf("cold misses: high=%.3f low=%.3f", hi.ColdMissFraction, lo.ColdMissFraction)
	}
	if hi.HitRates["L3"] <= lo.HitRates["L3"] {
		t.Fatalf("L3 hit rate: high=%.3f low=%.3f", hi.HitRates["L3"], lo.HitRates["L3"])
	}
}

func TestModelL1HitRateIsPoor(t *testing.T) {
	// The paper's key observation: L1D capacity (64 vectors) captures
	// almost none of the reuse in production-like traces.
	res, err := Run(modelDataset(t, trace.LowHot), modelConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRates["L1D"] > 0.35 {
		t.Fatalf("L1D hit rate = %.3f, expected poor locality", res.HitRates["L1D"])
	}
}

func TestModelOneItemIsPerfect(t *testing.T) {
	res, err := Run(modelDataset(t, trace.OneItem), modelConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// One row per table: everything after the first touch hits even L1.
	if res.HitRates["L1D"] < 0.95 {
		t.Fatalf("one-item L1D hit rate = %.3f", res.HitRates["L1D"])
	}
}

func TestModelRejectsBadConfig(t *testing.T) {
	d := modelDataset(t, trace.LowHot)
	if _, err := Run(d, ModelConfig{EmbeddingDim: 0, Cores: 1}); err == nil {
		t.Fatal("accepted zero dim")
	}
	bad := modelConfig(1)
	bad.CacheNames = bad.CacheNames[:1]
	if _, err := Run(d, bad); err == nil {
		t.Fatal("accepted mismatched names")
	}
}

func TestModelCoreCountChangesInterleaving(t *testing.T) {
	d := modelDataset(t, trace.MediumHot)
	one, err := Run(d, modelConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(d, modelConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if one.Accesses != many.Accesses {
		t.Fatalf("access counts differ: %d vs %d", one.Accesses, many.Accesses)
	}
	// Interleaving 8 independent batch streams stretches reuse distances
	// (destructive sharing), so small-capacity hit rates cannot improve
	// much; allow a tiny tolerance for constructive sharing.
	if many.HitRates["L1D"] > one.HitRates["L1D"]+0.05 {
		t.Fatalf("L1 hit rate improved under interleaving: %.3f vs %.3f",
			many.HitRates["L1D"], one.HitRates["L1D"])
	}
}
