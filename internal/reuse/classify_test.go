package reuse

import (
	"testing"

	"dlrmsim/internal/trace"
)

func classifyDataset(t *testing.T, h trace.Hotness, batches int) *trace.Dataset {
	t.Helper()
	d, err := trace.NewDataset(trace.Config{
		Hotness: h, Rows: 5_000, Tables: 3, BatchSize: 8,
		LookupsPerSample: 16, Batches: batches, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDecomposeCountsEveryAccess(t *testing.T) {
	d := classifyDataset(t, trace.MediumHot, 4)
	dec, err := Decompose(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(8 * 16 * 3 * 4)
	if dec.Accesses != want {
		t.Fatalf("accesses = %d, want %d", dec.Accesses, want)
	}
	var sum uint64
	var fracs float64
	for c := ColdAccess; c < numReuseClasses; c++ {
		sum += dec.Classes[c].Count
		fracs += dec.Fraction(c)
	}
	if sum != want {
		t.Fatalf("class counts sum to %d", sum)
	}
	if fracs < 0.999 || fracs > 1.001 {
		t.Fatalf("fractions sum to %g", fracs)
	}
}

func TestDecomposeSingleCoreHasNoInterCore(t *testing.T) {
	d := classifyDataset(t, trace.HighHot, 4)
	dec, err := Decompose(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Classes[InterCore].Count != 0 {
		t.Fatalf("single-core run classified %d inter-core reuses", dec.Classes[InterCore].Count)
	}
	// A hot trace across 4 batches must show both intra-table and
	// inter-batch reuse.
	if dec.Classes[IntraTable].Count == 0 {
		t.Fatal("no intra-table reuse in a hot trace")
	}
	if dec.Classes[InterBatch].Count == 0 {
		t.Fatal("no inter-batch reuse across 4 batches")
	}
}

func TestDecomposeSingleBatchHasNoInterBatch(t *testing.T) {
	d := classifyDataset(t, trace.HighHot, 1)
	dec, err := Decompose(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Classes[InterBatch].Count != 0 {
		t.Fatalf("one-batch run classified %d inter-batch reuses", dec.Classes[InterBatch].Count)
	}
}

func TestDecomposeMultiCoreFindsConstructiveSharing(t *testing.T) {
	d := classifyDataset(t, trace.HighHot, 4)
	dec, err := Decompose(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Four cores over the same hot tables: some reuse must cross cores.
	if dec.Classes[InterCore].Count == 0 {
		t.Fatal("no inter-core reuse despite shared hot rows")
	}
}

// TestInterBatchDistancesAreLarge reproduces the paper's "thick red
// arrow": reuse across batches of the same table has far larger stack
// distances than reuse within a single embedding_bag pass, because
// (almost) all other tables' accesses intervene.
func TestInterBatchDistancesAreLarge(t *testing.T) {
	d := classifyDataset(t, trace.HighHot, 4)
	dec, err := Decompose(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	intra := dec.Classes[IntraTable].MeanDistance()
	inter := dec.Classes[InterBatch].MeanDistance()
	if inter <= intra {
		t.Fatalf("inter-batch mean distance %.0f <= intra-table %.0f", inter, intra)
	}
	if inter < 10*intra {
		t.Fatalf("inter-batch distances (%.0f) should dwarf intra-table (%.0f)", inter, intra)
	}
}

// TestDecomposeColdFractionMatchesAnalyzer: the decomposition's cold
// class must agree with the plain analyzer's cold-miss accounting.
func TestDecomposeColdFractionMatchesAnalyzer(t *testing.T) {
	d := classifyDataset(t, trace.MediumHot, 2)
	dec, err := Decompose(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, ModelConfig{
		EmbeddingDim: 64, Cores: 2,
		CacheBytes: []int64{32 << 10}, CacheNames: []string{"L1D"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.Fraction(ColdAccess), res.ColdMissFraction; got != want {
		t.Fatalf("cold fraction %g != model's %g", got, want)
	}
}

func TestDecomposeRejectsBadCores(t *testing.T) {
	d := classifyDataset(t, trace.LowHot, 1)
	if _, err := Decompose(d, 0); err == nil {
		t.Fatal("accepted zero cores")
	}
}

func TestReuseClassStrings(t *testing.T) {
	for c := ColdAccess; c < numReuseClasses; c++ {
		if c.String() == "invalid" {
			t.Fatalf("class %d unnamed", c)
		}
	}
	if ReuseClass(99).String() != "invalid" {
		t.Fatal("out-of-range class not flagged")
	}
}
