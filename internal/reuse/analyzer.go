package reuse

import "dlrmsim/internal/stats"

// ColdDistance is returned by Access for a key's first touch.
const ColdDistance int64 = -1

// Analyzer computes the exact LRU stack distance of every access in a
// stream of keys. The distance of an access is the number of *distinct*
// keys touched since the previous access to the same key; a first touch is
// cold (ColdDistance). A fully-associative LRU cache holding C blocks hits
// exactly the accesses with distance < C — the mapping the paper's model
// uses to mark cache hit rates on its reuse-distance plots.
type Analyzer struct {
	bit      *fenwick
	lastSeen map[uint64]int
	clock    int
	hist     *stats.Histogram
}

// NewAnalyzer returns an Analyzer; capacityHint sizes internal structures
// for an expected trace length (0 is fine).
func NewAnalyzer(capacityHint int) *Analyzer {
	return &Analyzer{
		bit:      newFenwick(capacityHint),
		lastSeen: make(map[uint64]int),
		hist:     stats.NewHistogram(),
	}
}

// Access records one access and returns its stack distance (ColdDistance
// for a first touch).
func (a *Analyzer) Access(key uint64) int64 {
	a.clock++
	now := a.clock
	last, seen := a.lastSeen[key]
	var dist int64
	if seen {
		dist = int64(a.bit.rangeSum(last+1, now-1))
		a.bit.add(last, -1)
		a.hist.Add(dist)
	} else {
		dist = ColdDistance
		a.hist.AddInf()
	}
	a.bit.add(now, 1)
	a.lastSeen[key] = now
	return dist
}

// Accesses returns the number of accesses recorded.
func (a *Analyzer) Accesses() uint64 { return a.hist.Count() }

// ColdMisses returns the number of first-touch accesses.
func (a *Analyzer) ColdMisses() uint64 { return a.hist.InfCount() }

// ColdMissFraction returns cold misses over all accesses.
func (a *Analyzer) ColdMissFraction() float64 { return a.hist.InfFraction() }

// Histogram returns the log-bucketed distance histogram (cold misses are
// the infinite bucket). The histogram is live; callers must not retain it
// across further Access calls if they need a snapshot.
func (a *Analyzer) Histogram() *stats.Histogram { return a.hist }

// HitRate returns the exact hit rate of a fully-associative LRU cache
// holding `blocks` blocks, per the log-bucketed histogram (within-bucket
// interpolation applies at the boundary bucket).
func (a *Analyzer) HitRate(blocks int64) float64 {
	return a.hist.FractionBelow(blocks)
}

// CapacityTracker counts, exactly, hits for a fixed set of cache
// capacities while the trace streams through — avoiding the bucket
// interpolation error of Histogram for the headline numbers.
type CapacityTracker struct {
	capacities []int64
	hits       []uint64
	total      uint64
	cold       uint64
}

// NewCapacityTracker returns a tracker for the given capacities (in
// blocks, ascending or not).
func NewCapacityTracker(capacities []int64) *CapacityTracker {
	return &CapacityTracker{
		capacities: append([]int64(nil), capacities...),
		hits:       make([]uint64, len(capacities)),
	}
}

// Record feeds one stack distance (from Analyzer.Access) to the tracker.
func (t *CapacityTracker) Record(dist int64) {
	t.total++
	if dist == ColdDistance {
		t.cold++
		return
	}
	for i, c := range t.capacities {
		if dist < c {
			t.hits[i]++
		}
	}
}

// HitRate returns the exact hit rate for capacity index i.
func (t *CapacityTracker) HitRate(i int) float64 {
	if t.total == 0 {
		return 0
	}
	return float64(t.hits[i]) / float64(t.total)
}

// Total returns the number of recorded accesses.
func (t *CapacityTracker) Total() uint64 { return t.total }

// ColdFraction returns the cold-miss fraction.
func (t *CapacityTracker) ColdFraction() float64 {
	if t.total == 0 {
		return 0
	}
	return float64(t.cold) / float64(t.total)
}
