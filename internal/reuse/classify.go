package reuse

import (
	"fmt"

	"dlrmsim/internal/stats"
	"dlrmsim/internal/trace"
)

// ReuseClass labels where a row reuse comes from, per the paper's §3.1.2
// taxonomy ("Insights on temporal locality").
type ReuseClass int

// The four reuse classes plus cold (first touch).
const (
	// ColdAccess is a first touch — no reuse.
	ColdAccess ReuseClass = iota
	// IntraTable: previous access to the row was in the same (core,
	// batch, table) pass — reuse within one embedding_bag invocation.
	IntraTable
	// InterBatch: previous access was by the same core in an earlier
	// batch (the paper's "thick red arrow": reuse across batches of the
	// same table, with nearly a whole pass of unique accesses between).
	InterBatch
	// InterCore: previous access was by a different core — constructive
	// sharing through the shared LLC.
	InterCore
	numReuseClasses
)

// String names the class.
func (c ReuseClass) String() string {
	switch c {
	case ColdAccess:
		return "cold"
	case IntraTable:
		return "intra-table"
	case InterBatch:
		return "inter-batch"
	case InterCore:
		return "inter-core"
	default:
		return "invalid"
	}
}

// Note on inter-table reuse: two tables never share rows (disjoint key
// spaces), so the paper's "inter-table" class manifests as *interference*
// (cache thrashing between tables), not as reuse; the decomposition here
// therefore classifies actual reuses into the three sharing classes and
// reports thrashing through the distance statistics instead.

// ClassStats aggregates reuse behavior for one class.
type ClassStats struct {
	Count        uint64
	DistanceSum  float64
	DistanceHist *stats.Histogram
}

// MeanDistance returns the class's mean stack distance.
func (s ClassStats) MeanDistance() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.DistanceSum / float64(s.Count)
}

// Decomposition is the per-class breakdown of a trace's accesses.
type Decomposition struct {
	// Classes indexes ClassStats by ReuseClass.
	Classes [numReuseClasses]ClassStats
	// Accesses is the total trace length.
	Accesses uint64
}

// Fraction returns the share of all accesses in the class.
func (d *Decomposition) Fraction(c ReuseClass) float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.Classes[c].Count) / float64(d.Accesses)
}

// lastTouch records who touched a row last.
type lastTouch struct {
	core  int
	batch int32
}

// Decompose replays the dataset's index-access trace exactly like Run
// (batch b on core b%cores, round-robin interleaving, table → sample →
// lookup order) and attributes every access to a reuse class, measuring
// per-class stack distances. This reproduces the paper's qualitative
// §3.1.2 analysis as a quantitative table.
func Decompose(d *trace.Dataset, cores int) (*Decomposition, error) {
	if cores < 1 {
		return nil, fmt.Errorf("reuse: %d cores", cores)
	}
	tc := d.Config()
	dec := &Decomposition{}
	for i := range dec.Classes {
		dec.Classes[i].DistanceHist = stats.NewHistogram()
	}
	an := NewAnalyzer(tc.BatchSize * tc.LookupsPerSample * tc.Tables)
	last := make(map[uint64]lastTouch)

	type coreCursor struct {
		batch   int
		table   int
		pos     int
		current trace.TableBatch
		done    bool
	}
	cursors := make([]*coreCursor, cores)
	active := 0
	for c := range cursors {
		cur := &coreCursor{batch: c}
		if cur.batch >= tc.Batches {
			cur.done = true
		} else {
			cur.current = d.Batch(cur.batch, 0)
			active++
		}
		cursors[c] = cur
	}
	record := func(cls ReuseClass, dist int64) {
		cs := &dec.Classes[cls]
		cs.Count++
		if dist >= 0 {
			cs.DistanceSum += float64(dist)
			cs.DistanceHist.Add(dist)
		} else {
			cs.DistanceHist.AddInf()
		}
		dec.Accesses++
	}
	for active > 0 {
		for coreID, cur := range cursors {
			if cur.done {
				continue
			}
			ix := cur.current.Indices[cur.pos]
			key := uint64(cur.table)<<32 | uint64(uint32(ix))
			dist := an.Access(key)
			prev, seen := last[key]
			switch {
			case !seen:
				record(ColdAccess, dist)
			case prev.core != coreID:
				record(InterCore, dist)
			case prev.batch != int32(cur.batch):
				record(InterBatch, dist)
			default:
				record(IntraTable, dist)
			}
			last[key] = lastTouch{core: coreID, batch: int32(cur.batch)}
			cur.pos++
			if cur.pos >= len(cur.current.Indices) {
				cur.pos = 0
				cur.table++
				if cur.table >= tc.Tables {
					cur.table = 0
					cur.batch += cores
					if cur.batch >= tc.Batches {
						cur.done = true
						active--
						continue
					}
				}
				cur.current = d.Batch(cur.batch, cur.table)
			}
		}
	}
	return dec, nil
}
