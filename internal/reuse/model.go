package reuse

import (
	"fmt"

	"dlrmsim/internal/stats"
	"dlrmsim/internal/trace"
)

// ModelConfig drives the paper's Fig. 6 pipeline: an index-access trace is
// generated from the dataset per Algorithm 1's loop order, stack distances
// are computed, and cache capacities (converted to "embedding vectors the
// cache can hold", assuming full associativity and fp32 rows) are marked
// as hit rates.
type ModelConfig struct {
	// EmbeddingDim converts byte capacities to vector capacities:
	// a cache of B bytes holds B / (4*EmbeddingDim) vectors.
	EmbeddingDim int
	// Cores is the number of cores concurrently running batches. Each
	// batch is mapped to one core (the paper's execution model); the
	// interleaved trace models their shared-LLC interaction.
	Cores int
	// CacheBytes lists the capacities to mark, e.g. L1/L2/L3 sizes.
	CacheBytes []int64
	// CacheNames labels them 1:1 in the result.
	CacheNames []string
}

// ModelResult is the paper's reuse-distance characterization for one
// dataset.
type ModelResult struct {
	// Hist is the distance histogram (vector-granularity, interleaved
	// across cores).
	Hist *stats.Histogram
	// HitRates holds, per configured cache, the hit rate a
	// fully-associative cache of that capacity would achieve.
	HitRates map[string]float64
	// VectorCapacity maps cache name to its capacity in vectors.
	VectorCapacity map[string]int64
	// ColdMissFraction is the fraction of accesses that are first
	// touches (the paper's yellow cold-miss marker).
	ColdMissFraction float64
	// Accesses is the trace length analyzed.
	Accesses uint64
	// MeanDistance is the mean finite stack distance.
	MeanDistance float64
}

// Run generates the index-access trace for d (batch b goes to core
// b%Cores; concurrent cores' accesses interleave round-robin) and returns
// the reuse-distance characterization. The access key is (table, row):
// one embedding vector, matching the paper's vector-granularity model.
func Run(d *trace.Dataset, cfg ModelConfig) (*ModelResult, error) {
	if cfg.EmbeddingDim < 1 || cfg.Cores < 1 {
		return nil, fmt.Errorf("reuse: bad model config %+v", cfg)
	}
	if len(cfg.CacheBytes) != len(cfg.CacheNames) {
		return nil, fmt.Errorf("reuse: %d capacities vs %d names", len(cfg.CacheBytes), len(cfg.CacheNames))
	}
	tc := d.Config()
	vectorBytes := int64(4 * cfg.EmbeddingDim)
	capsVec := make([]int64, len(cfg.CacheBytes))
	for i, b := range cfg.CacheBytes {
		capsVec[i] = b / vectorBytes
	}
	an := NewAnalyzer(tc.BatchSize * tc.LookupsPerSample * tc.Tables)
	tracker := NewCapacityTracker(capsVec)

	// Round-robin interleave the per-core streams. Core c runs batches
	// c, c+Cores, c+2*Cores, ...; within a batch the loop order is
	// table → sample → lookup (Algorithm 1).
	type coreCursor struct {
		batch   int // current batch index (absolute)
		table   int
		pos     int // index into the current TableBatch.Indices
		current trace.TableBatch
		done    bool
	}
	cursors := make([]*coreCursor, cfg.Cores)
	for c := range cursors {
		cur := &coreCursor{batch: c}
		if cur.batch >= tc.Batches {
			cur.done = true
		} else {
			cur.current = d.Batch(cur.batch, 0)
		}
		cursors[c] = cur
	}
	active := 0
	for _, cur := range cursors {
		if !cur.done {
			active++
		}
	}
	for active > 0 {
		for _, cur := range cursors {
			if cur.done {
				continue
			}
			ix := cur.current.Indices[cur.pos]
			key := uint64(cur.table)<<32 | uint64(uint32(ix))
			tracker.Record(an.Access(key))
			cur.pos++
			if cur.pos >= len(cur.current.Indices) {
				cur.pos = 0
				cur.table++
				if cur.table >= tc.Tables {
					cur.table = 0
					cur.batch += cfg.Cores
					if cur.batch >= tc.Batches {
						cur.done = true
						active--
						continue
					}
				}
				cur.current = d.Batch(cur.batch, cur.table)
			}
		}
	}

	res := &ModelResult{
		Hist:             an.Histogram(),
		HitRates:         make(map[string]float64, len(cfg.CacheNames)),
		VectorCapacity:   make(map[string]int64, len(cfg.CacheNames)),
		ColdMissFraction: tracker.ColdFraction(),
		Accesses:         tracker.Total(),
		MeanDistance:     an.Histogram().Mean(),
	}
	for i, name := range cfg.CacheNames {
		res.HitRates[name] = tracker.HitRate(i)
		res.VectorCapacity[name] = capsVec[i]
	}
	return res, nil
}
