// Package embedding implements the DLRM embedding stage: embedding tables,
// the embedding_bag gather-reduce kernel (PyTorch semantics: per sample,
// sum the rows selected by an indices/offsets pair), and the kernel's
// instruction stream for the timing simulator — including the paper's
// Algorithm 3 software-prefetch insertion with its pf_dist and pf_blocks
// knobs.
//
// Tables are procedural: row values derive from a hash of (table, row,
// column), so an 81 GB model costs no memory while remaining bit-for-bit
// reproducible. The timing path uses only addresses; the numeric path
// generates values on demand.
package embedding

import (
	"fmt"
	"math"

	"dlrmsim/internal/memsim"
	"dlrmsim/internal/stats"
)

// tablesBase places embedding tables high in the simulated address space,
// away from MLP weights and activation buffers.
const tablesBase memsim.Addr = 1 << 40

// DType is the storage type of embedding elements. Production systems
// quantize embeddings (fp16, int8) to cut the memory footprint and
// bandwidth; the row size in turn changes how many cache lines a lookup
// touches and therefore the right pf_blocks setting.
type DType int

// Supported element types.
const (
	// F32 is the paper's configuration: 4 bytes per element.
	F32 DType = iota
	// F16 halves the row footprint.
	F16
	// Int8 quarters it (plus a per-row fp32 scale, 4 bytes).
	Int8
)

// ElemBytes returns the storage bytes per element.
func (d DType) ElemBytes() int {
	switch d {
	case F16:
		return 2
	case Int8:
		return 1
	default:
		return 4
	}
}

// rowOverheadBytes returns per-row metadata (the int8 dequant scale).
func (d DType) rowOverheadBytes() int {
	if d == Int8 {
		return 4
	}
	return 0
}

// String names the type.
func (d DType) String() string {
	switch d {
	case F32:
		return "fp32"
	case F16:
		return "fp16"
	case Int8:
		return "int8"
	default:
		return "invalid"
	}
}

// Table is one procedural embedding table.
type Table struct {
	id    int
	rows  int
	dim   int
	seed  uint64
	dtype DType
	base  memsim.Addr
}

// NewTable defines an fp32 table (the paper's configuration). Tables with
// the same (id, rows, dim, seed) are identical. It panics on non-positive
// geometry.
func NewTable(id, rows, dim int, seed uint64) *Table {
	return NewTypedTable(id, rows, dim, seed, F32)
}

// NewTypedTable defines a table with an explicit element type.
func NewTypedTable(id, rows, dim int, seed uint64, dtype DType) *Table {
	if id < 0 || rows < 1 || dim < 1 {
		panic(fmt.Sprintf("embedding: bad table geometry id=%d rows=%d dim=%d", id, rows, dim))
	}
	t := &Table{id: id, rows: rows, dim: dim, seed: seed, dtype: dtype}
	t.base = tablesBase + memsim.Addr(uint64(id)*uint64(rows)*uint64(t.RowBytes()))
	return t
}

// DType returns the element storage type.
func (t *Table) DType() DType { return t.dtype }

// ID returns the table's index within the model.
func (t *Table) ID() int { return t.id }

// Rows returns the row count.
func (t *Table) Rows() int { return t.rows }

// Dim returns the embedding dimension.
func (t *Table) Dim() int { return t.dim }

// RowBytes returns the size of one stored row in bytes, including any
// per-row quantization metadata.
func (t *Table) RowBytes() int { return t.dim*t.dtype.ElemBytes() + t.dtype.rowOverheadBytes() }

// RowLines returns the number of cache lines one row spans.
func (t *Table) RowLines() int { return (t.RowBytes() + memsim.LineSize - 1) / memsim.LineSize }

// RowAddr returns the simulated address of row r.
func (t *Table) RowAddr(r int32) memsim.Addr {
	return t.base + memsim.Addr(uint64(r)*uint64(t.RowBytes()))
}

// At returns the procedural value at (row, col), a deterministic value in
// [-0.05, 0.05) — the usual scale of trained embedding weights. Quantized
// tables return the dequantized value, so reduced dtypes show their
// precision loss numerically just like a real deployment.
func (t *Table) At(row int32, col int) float32 {
	h := stats.Mix64(t.seed ^ uint64(t.id)<<48 ^ uint64(uint32(row))<<16 ^ uint64(col))
	v := float32(stats.MixFloat01(h)-0.5) * 0.1
	switch t.dtype {
	case Int8:
		// Symmetric int8 with a per-row scale of 0.05 (the value range).
		const scale = 0.05 / 127
		q := int8(v / scale)
		return float32(q) * scale
	case F16:
		return roundF16(v)
	default:
		return v
	}
}

// roundF16 rounds a float32 to the nearest IEEE half-precision value
// (round-to-nearest-even), returned as float32.
func roundF16(v float32) float32 {
	bits := math.Float32bits(v)
	sign := bits & 0x80000000
	exp := int32(bits>>23&0xff) - 127
	man := bits & 0x7fffff
	switch {
	case exp < -24: // underflow to zero
		return math.Float32frombits(sign)
	case exp > 15: // overflow to inf (not reachable for our value range)
		return math.Float32frombits(sign | 0x7f800000)
	case exp < -14: // subnormal half: flush to zero (FTZ semantics)
		return math.Float32frombits(sign)
	default:
		// Round mantissa to 10 bits.
		r := man + 0x1000
		if r&0x800000 != 0 { // mantissa overflow bumps the exponent
			r = 0
			exp++
		}
		man = r &^ 0x1fff
		return math.Float32frombits(sign | uint32(exp+127)<<23 | man)
	}
}

// Row materializes row r into dst (allocating if nil) and returns it.
func (t *Table) Row(r int32, dst []float32) []float32 {
	if cap(dst) < t.dim {
		dst = make([]float32, t.dim)
	}
	dst = dst[:t.dim]
	for c := range dst {
		dst[c] = t.At(r, c)
	}
	return dst
}

// FootprintBytes returns the table's modeled memory footprint.
func (t *Table) FootprintBytes() int64 {
	return int64(t.rows) * int64(t.RowBytes())
}
