package embedding

import (
	"testing"
	"testing/quick"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/memsim"
	"dlrmsim/internal/trace"
)

// TestStreamCoversExactlyTheRowsBagReads: the timing stream and the
// numeric kernel must agree on which table rows a batch touches — every
// row Bag sums must appear as demand line loads in the stream (all of its
// lines), and no other table rows may be loaded.
func TestStreamCoversExactlyTheRowsBagReads(t *testing.T) {
	tbl := NewTable(0, 512, 128, 3)
	f := func(rawIdx []uint16, rawOffsets []uint8) bool {
		if len(rawIdx) == 0 {
			return true
		}
		// Build a valid TableBatch from fuzz input.
		indices := make([]int32, len(rawIdx))
		for i, r := range rawIdx {
			indices[i] = int32(int(r) % tbl.Rows())
		}
		offsets := []int32{0}
		pos := int32(0)
		for _, r := range rawOffsets {
			pos += int32(r % 8)
			if pos > int32(len(indices)) {
				pos = int32(len(indices))
			}
			offsets = append(offsets, pos)
		}
		if offsets[len(offsets)-1] != int32(len(indices)) {
			offsets = append(offsets, int32(len(indices)))
		}
		tb := trace.TableBatch{Offsets: offsets, Indices: indices}

		// Rows the numeric kernel reads.
		wantRows := map[int32]bool{}
		for s := 0; s+1 < len(offsets); s++ {
			for _, ix := range indices[offsets[s]:offsets[s+1]] {
				wantRows[ix] = true
			}
		}
		// Row-line loads in the stream.
		gotLines := map[memsim.Addr]bool{}
		stream := NewTableStream(tbl, tb, 0, StreamConfig{FlopsPerCycle: 32, BufBase: 1 << 33})
		var op cpusim.Op
		tblStart := tbl.RowAddr(0)
		tblEnd := tblStart + memsim.Addr(tbl.FootprintBytes())
		for stream.Next(&op) {
			if op.Kind != cpusim.OpLoad {
				continue
			}
			lines := int(op.Lines) // row gathers are burst ops
			if lines < 1 {
				lines = 1
			}
			for cb := 0; cb < lines; cb++ {
				a := op.Addr + memsim.Addr(cb*memsim.LineSize)
				if a >= tblStart && a < tblEnd {
					gotLines[a] = true
				}
			}
		}
		// Every line of every wanted row must be loaded; nothing else.
		wantLines := map[memsim.Addr]bool{}
		for r := range wantRows {
			for cb := 0; cb < tbl.RowLines(); cb++ {
				wantLines[tbl.RowAddr(r)+memsim.Addr(cb*memsim.LineSize)] = true
			}
		}
		if len(gotLines) != len(wantLines) {
			return false
		}
		for a := range wantLines {
			if !gotLines[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchTargetsAreSubsetOfDemandRows: with Algorithm 3 (indexed
// mode), every prefetched line belongs to a row the batch actually
// gathers — the kernel prefetches exactly the necessary indices, the
// paper's "what to prefetch" answer.
func TestPrefetchTargetsAreSubsetOfDemandRows(t *testing.T) {
	tbl := NewTable(0, 256, 128, 5)
	tb := trace.TableBatch{
		Offsets: []int32{0, 4, 9},
		Indices: []int32{10, 20, 30, 40, 50, 60, 70, 80, 90},
	}
	rowLines := map[memsim.Addr]bool{}
	for _, ix := range tb.Indices {
		for cb := 0; cb < tbl.RowLines(); cb++ {
			rowLines[tbl.RowAddr(ix)+memsim.Addr(cb*memsim.LineSize)] = true
		}
	}
	s := NewTableStream(tbl, tb, 0, StreamConfig{
		FlopsPerCycle: 32, BufBase: 1 << 33,
		Prefetch: PrefetchConfig{Dist: 3, Blocks: 8},
	})
	var op cpusim.Op
	prefetches := 0
	for s.Next(&op) {
		if op.Kind != cpusim.OpPrefetch {
			continue
		}
		lines := int(op.Lines) // prefetch bursts cover pf_blocks lines
		if lines < 1 {
			lines = 1
		}
		for cb := 0; cb < lines; cb++ {
			prefetches++
			a := op.Addr + memsim.Addr(cb*memsim.LineSize)
			if !rowLines[a] {
				t.Fatalf("prefetch of %#x targets a line no demand load gathers", a)
			}
		}
	}
	if prefetches == 0 {
		t.Fatal("no prefetches emitted")
	}
}

// TestSequentialModeMissesTheMark: the compiler-style stride guess must
// (usually) prefetch rows the batch does NOT gather — that wrongness is
// what Fig. 10(a) demonstrates.
func TestSequentialModeMissesTheMark(t *testing.T) {
	tbl := NewTable(0, 100_000, 128, 5)
	tb := trace.TableBatch{
		Offsets: []int32{0, 4},
		Indices: []int32{17, 9041, 55321, 23},
	}
	wantRows := map[int32]bool{17: true, 9041: true, 55321: true, 23: true}
	s := NewTableStream(tbl, tb, 0, StreamConfig{
		FlopsPerCycle: 32, BufBase: 1 << 33,
		Prefetch: PrefetchConfig{Dist: 1, Blocks: 1, Mode: ModeSequential},
	})
	var op cpusim.Op
	wrong, total := 0, 0
	for s.Next(&op) {
		if op.Kind != cpusim.OpPrefetch {
			continue
		}
		total++
		row := int32((op.Addr - tbl.RowAddr(0)) / memsim.Addr(tbl.RowBytes()))
		if !wantRows[row] {
			wrong++
		}
	}
	if total == 0 {
		t.Fatal("no prefetches emitted")
	}
	if wrong == 0 {
		t.Fatal("stride-mode prefetching hit every row; it should be mostly wrong on scattered indices")
	}
}

// TestBagReusesProvidedBuffers: passing a preallocated output avoids
// reallocation (hot-path contract used by dlrm.Infer).
func TestBagReusesProvidedBuffers(t *testing.T) {
	tbl := NewTable(0, 100, 16, 1)
	tb := trace.TableBatch{Offsets: []int32{0, 1}, Indices: []int32{5}}
	out := make([][]float32, 1)
	out[0] = make([]float32, 16)
	got, err := Bag(tbl, tb, out)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0][0] != &out[0][0] {
		t.Fatal("Bag reallocated a sufficient buffer")
	}
}
