package embedding

import (
	"math"
	"testing"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/memsim"
	"dlrmsim/internal/trace"
)

func testTable() *Table { return NewTable(0, 1000, 128, 7) }

func TestTableGeometry(t *testing.T) {
	tb := testTable()
	if tb.RowBytes() != 512 || tb.RowLines() != 8 {
		t.Fatalf("row bytes/lines = %d/%d", tb.RowBytes(), tb.RowLines())
	}
	if tb.FootprintBytes() != 1000*512 {
		t.Fatalf("footprint = %d", tb.FootprintBytes())
	}
}

func TestTableAddressesDisjoint(t *testing.T) {
	t0 := NewTable(0, 1000, 128, 7)
	t1 := NewTable(1, 1000, 128, 7)
	end0 := t0.RowAddr(999) + memsim.Addr(t0.RowBytes())
	if t1.RowAddr(0) < end0 {
		t.Fatalf("tables overlap: t0 ends %#x, t1 starts %#x", end0, t1.RowAddr(0))
	}
}

func TestTableValuesDeterministic(t *testing.T) {
	a, b := testTable(), testTable()
	for r := int32(0); r < 5; r++ {
		for c := 0; c < 128; c++ {
			if a.At(r, c) != b.At(r, c) {
				t.Fatalf("value (%d,%d) differs", r, c)
			}
		}
	}
	if a.At(0, 0) == a.At(1, 0) && a.At(0, 1) == a.At(1, 1) && a.At(0, 2) == a.At(1, 2) {
		t.Fatal("rows 0 and 1 look identical")
	}
}

func TestTableValuesBounded(t *testing.T) {
	tb := testTable()
	for r := int32(0); r < 100; r++ {
		for c := 0; c < 128; c++ {
			v := tb.At(r, c)
			if v < -0.05 || v >= 0.05 {
				t.Fatalf("value (%d,%d) = %g out of range", r, c, v)
			}
		}
	}
}

func TestBagSumsRows(t *testing.T) {
	tb := testTable()
	in := trace.TableBatch{
		Offsets: []int32{0, 2, 3},
		Indices: []int32{5, 9, 5},
	}
	out, err := Bag(tb, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("batch out = %d", len(out))
	}
	for c := 0; c < 128; c++ {
		want := tb.At(5, c) + tb.At(9, c)
		if math.Abs(float64(out[0][c]-want)) > 1e-6 {
			t.Fatalf("sample 0 col %d: %g want %g", c, out[0][c], want)
		}
		if out[1][c] != tb.At(5, c) {
			t.Fatalf("sample 1 col %d: %g want %g", c, out[1][c], tb.At(5, c))
		}
	}
}

func TestBagEmptySample(t *testing.T) {
	tb := testTable()
	in := trace.TableBatch{Offsets: []int32{0, 0, 1}, Indices: []int32{3}}
	out, err := Bag(tb, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for c := range out[0] {
		if out[0][c] != 0 {
			t.Fatal("empty sample should pool to zero")
		}
	}
}

func TestBagRejectsBadIndices(t *testing.T) {
	tb := testTable()
	if _, err := Bag(tb, trace.TableBatch{Offsets: []int32{0, 1}, Indices: []int32{5000}}, nil); err == nil {
		t.Fatal("accepted out-of-range index")
	}
	if _, err := Bag(tb, trace.TableBatch{Offsets: []int32{0, 5}, Indices: []int32{1}}, nil); err == nil {
		t.Fatal("accepted out-of-range offsets")
	}
}

func smallBatch() trace.TableBatch {
	return trace.TableBatch{
		Offsets: []int32{0, 3, 6},
		Indices: []int32{1, 2, 3, 4, 5, 6},
	}
}

func streamCfg(pf PrefetchConfig) StreamConfig {
	return StreamConfig{Prefetch: pf, FlopsPerCycle: 32, BufBase: 1 << 33}
}

func TestTableStreamOpCountsNoPrefetch(t *testing.T) {
	tb := testTable()
	s := NewTableStream(tb, smallBatch(), 0, streamCfg(PrefetchConfig{}))
	counts := cpusim.CountLines(s)
	// Per lookup: 8 row-line loads (one burst op) + 8 accumulator loads
	// (Algorithm 1's vec.ld accm); plus 1 index-array load per sample
	// (3 lookups < 16) and 1 offsets load per sample.
	wantLoads := int64(6*(8+8) + 2 + 2)
	if counts[cpusim.OpLoad] != wantLoads {
		t.Fatalf("loads = %d, want %d", counts[cpusim.OpLoad], wantLoads)
	}
	if counts[cpusim.OpPrefetch] != 0 {
		t.Fatalf("prefetches = %d, want 0", counts[cpusim.OpPrefetch])
	}
	// Algorithm 1's vec.st accm: 8 stores per lookup.
	if counts[cpusim.OpStore] != 6*8 {
		t.Fatalf("stores = %d, want 48", counts[cpusim.OpStore])
	}
}

func TestTableStreamPrefetchCount(t *testing.T) {
	tb := testTable()
	s := NewTableStream(tb, smallBatch(), 0, streamCfg(PrefetchConfig{Dist: 2, Blocks: 8}))
	counts := cpusim.CountLines(s)
	// Look-ahead runs array-wide: lookups 0..3 have an in-range target
	// (l+2 < 6), lookups 4 and 5 do not. 4 lookups × 8 blocks.
	if counts[cpusim.OpPrefetch] != 32 {
		t.Fatalf("prefetches = %d, want 32", counts[cpusim.OpPrefetch])
	}
}

func TestTableStreamPrefetchBlocksKnob(t *testing.T) {
	tb := testTable()
	s := NewTableStream(tb, smallBatch(), 0, streamCfg(PrefetchConfig{Dist: 2, Blocks: 2}))
	counts := cpusim.CountLines(s)
	if counts[cpusim.OpPrefetch] != 8 { // 4 in-range lookups × 2 blocks
		t.Fatalf("prefetches = %d, want 8", counts[cpusim.OpPrefetch])
	}
}

func TestTableStreamPrefetchTargetsFutureRow(t *testing.T) {
	tb := testTable()
	s := NewTableStream(tb, smallBatch(), 0, streamCfg(PrefetchConfig{Dist: 1, Blocks: 1}))
	var op cpusim.Op
	var firstPrefetch, firstRowLoad memsim.Addr
	for s.Next(&op) {
		if op.Kind == cpusim.OpPrefetch && firstPrefetch == 0 {
			firstPrefetch = op.Addr
		}
		if op.Kind == cpusim.OpLoad && op.Addr >= tb.RowAddr(0) && firstRowLoad == 0 {
			firstRowLoad = op.Addr
		}
	}
	// First prefetch targets row Indices[1]=2; first row load is row 1.
	if firstPrefetch != tb.RowAddr(2) {
		t.Fatalf("first prefetch %#x, want row 2 at %#x", firstPrefetch, tb.RowAddr(2))
	}
	if firstRowLoad != tb.RowAddr(1) {
		t.Fatalf("first row load %#x, want row 1 at %#x", firstRowLoad, tb.RowAddr(1))
	}
}

func TestStageStreamCoversAllTables(t *testing.T) {
	tables := []*Table{NewTable(0, 100, 64, 1), NewTable(1, 100, 64, 1)}
	in := trace.TableBatch{Offsets: []int32{0, 2}, Indices: []int32{1, 2}}
	s := NewStageStream(tables, func(int) trace.TableBatch { return in }, streamCfg(PrefetchConfig{}))
	var op cpusim.Op
	seen := map[int]bool{}
	for s.Next(&op) {
		if op.Kind != cpusim.OpLoad {
			continue
		}
		for i, tb := range tables {
			if op.Addr >= tb.RowAddr(0) && op.Addr < tb.RowAddr(0)+memsim.Addr(tb.FootprintBytes()) {
				seen[i] = true
			}
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("stage stream missed tables: %v", seen)
	}
}

func TestStreamTimingPrefetchSpeedsUpColdScan(t *testing.T) {
	// End-to-end through the core model: a low-locality batch should run
	// faster with Algorithm 3 prefetching than without.
	tb := NewTable(0, 100_000, 128, 3)
	// 2 samples × 64 unique lookups each.
	in := trace.TableBatch{Offsets: []int32{0, 64, 128}}
	for i := int32(0); i < 128; i++ {
		in.Indices = append(in.Indices, i*701%100_000)
	}
	mp := memsim.MemParams{
		L1:   memsim.CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 5},
		L2:   memsim.CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 16, LatencyCyc: 14},
		L3:   memsim.CacheConfig{Name: "L3", SizeBytes: 8 << 20, Ways: 11, LatencyCyc: 50},
		DRAM: memsim.DRAMConfig{BaseLatencyCyc: 200, PeakBandwidthBytesPerCyc: 58},
	}
	cp := cpusim.CoreParams{IssueWidth: 4, WindowSize: 224, DemandMLP: 6, FillBuffers: 12, PipelinedLatency: 14}
	run := func(pf PrefetchConfig) float64 {
		core := cpusim.NewCore(cp, memsim.NewHierarchy(mp, memsim.NewShared(mp)))
		return core.Run(NewTableStream(tb, in, 0, streamCfg(pf))).Cycles
	}
	base := run(PrefetchConfig{})
	swpf := run(PrefetchConfig{Dist: 4, Blocks: 8})
	if swpf >= base {
		t.Fatalf("prefetching did not speed up: base=%g swpf=%g", base, swpf)
	}
}
