package embedding

import (
	"math"
	"testing"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/trace"
)

func TestDTypeSizes(t *testing.T) {
	if F32.ElemBytes() != 4 || F16.ElemBytes() != 2 || Int8.ElemBytes() != 1 {
		t.Fatal("element sizes wrong")
	}
	for _, d := range []DType{F32, F16, Int8} {
		if d.String() == "invalid" {
			t.Fatalf("dtype %d unnamed", d)
		}
	}
	if DType(9).String() != "invalid" {
		t.Fatal("bad dtype not flagged")
	}
}

func TestQuantizedRowGeometry(t *testing.T) {
	f32 := NewTypedTable(0, 100, 128, 1, F32)
	f16 := NewTypedTable(0, 100, 128, 1, F16)
	i8 := NewTypedTable(0, 100, 128, 1, Int8)
	if f32.RowBytes() != 512 || f32.RowLines() != 8 {
		t.Fatalf("fp32 row = %d B / %d lines", f32.RowBytes(), f32.RowLines())
	}
	if f16.RowBytes() != 256 || f16.RowLines() != 4 {
		t.Fatalf("fp16 row = %d B / %d lines", f16.RowBytes(), f16.RowLines())
	}
	// int8: 128 elements + 4-byte scale = 132 B = 3 lines.
	if i8.RowBytes() != 132 || i8.RowLines() != 3 {
		t.Fatalf("int8 row = %d B / %d lines", i8.RowBytes(), i8.RowLines())
	}
	if i8.DType() != Int8 {
		t.Fatal("DType accessor")
	}
}

func TestQuantizedValuesApproximateF32(t *testing.T) {
	f32 := NewTypedTable(0, 100, 64, 7, F32)
	for _, d := range []DType{F16, Int8} {
		q := NewTypedTable(0, 100, 64, 7, d)
		var maxErr float64
		for r := int32(0); r < 50; r++ {
			for c := 0; c < 64; c++ {
				e := math.Abs(float64(q.At(r, c) - f32.At(r, c)))
				if e > maxErr {
					maxErr = e
				}
			}
		}
		// int8 with scale 0.05/127: max quantization error ~0.0004.
		if maxErr > 6e-4 {
			t.Errorf("%v: max quantization error %g too large", d, maxErr)
		}
		if maxErr == 0 {
			t.Errorf("%v: values identical to fp32; quantization not applied", d)
		}
	}
}

func TestQuantizedBagStillSums(t *testing.T) {
	tbl := NewTypedTable(0, 100, 32, 3, Int8)
	in := trace.TableBatch{Offsets: []int32{0, 2}, Indices: []int32{4, 9}}
	out, err := Bag(tbl, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 32; c++ {
		want := tbl.At(4, c) + tbl.At(9, c)
		if out[0][c] != want {
			t.Fatalf("col %d: %g != %g", c, out[0][c], want)
		}
	}
}

func TestQuantizedStreamTouchesFewerLines(t *testing.T) {
	in := trace.TableBatch{Offsets: []int32{0, 4}, Indices: []int32{1, 2, 3, 4}}
	countRowLoads := func(d DType) int64 {
		tbl := NewTypedTable(0, 100, 128, 3, d)
		s := NewTableStream(tbl, in, 0, StreamConfig{FlopsPerCycle: 32, BufBase: 1 << 33})
		var op cpusim.Op
		var n int64
		start := tbl.RowAddr(0)
		for s.Next(&op) {
			if op.Kind == cpusim.OpLoad && op.Addr >= start {
				if op.Lines > 1 {
					n += int64(op.Lines) // row gathers are burst ops
				} else {
					n++
				}
			}
		}
		return n
	}
	f32Loads := countRowLoads(F32)
	i8Loads := countRowLoads(Int8)
	if f32Loads != 4*8 {
		t.Fatalf("fp32 row loads = %d", f32Loads)
	}
	if i8Loads != 4*3 {
		t.Fatalf("int8 row loads = %d, want 12 (3 lines/row)", i8Loads)
	}
}

func TestQuantizedPrefetchBlocksClamped(t *testing.T) {
	// pf_blocks=8 on a 3-line int8 row must clamp to 3.
	tbl := NewTypedTable(0, 1000, 128, 3, Int8)
	in := trace.TableBatch{Offsets: []int32{0, 4}, Indices: []int32{10, 20, 30, 40}}
	s := NewTableStream(tbl, in, 0, StreamConfig{
		FlopsPerCycle: 32, BufBase: 1 << 33,
		Prefetch: PrefetchConfig{Dist: 1, Blocks: 8},
	})
	counts := cpusim.CountLines(s)
	// Lookups 0-2 have in-range targets: 3 × 3 lines.
	if counts[cpusim.OpPrefetch] != 9 {
		t.Fatalf("prefetches = %d, want 9", counts[cpusim.OpPrefetch])
	}
}
