package embedding

import (
	"fmt"

	"dlrmsim/internal/trace"
)

// Bag evaluates embedding_bag numerically for one table: for each sample
// i, the rows selected by Indices[Offsets[i]:Offsets[i+1]] are summed
// (PyTorch's mode="sum", the DLRM default).
//
// out is shaped [batchSize][dim]; rows of out are reused if cap allows.
func Bag(t *Table, tb trace.TableBatch, out [][]float32) ([][]float32, error) {
	batch := len(tb.Offsets) - 1
	if batch < 0 {
		return nil, fmt.Errorf("embedding: empty offsets")
	}
	if cap(out) < batch {
		out = make([][]float32, batch)
	}
	out = out[:batch]
	var rowBuf []float32
	for s := 0; s < batch; s++ {
		if cap(out[s]) < t.dim {
			out[s] = make([]float32, t.dim)
		}
		acc := out[s][:t.dim]
		for c := range acc {
			acc[c] = 0
		}
		lo, hi := tb.Offsets[s], tb.Offsets[s+1]
		if lo > hi || int(hi) > len(tb.Indices) {
			return nil, fmt.Errorf("embedding: offsets [%d,%d) out of range (len %d)", lo, hi, len(tb.Indices))
		}
		for l := lo; l < hi; l++ {
			ix := tb.Indices[l]
			if ix < 0 || int(ix) >= t.rows {
				return nil, fmt.Errorf("embedding: index %d out of table (%d rows)", ix, t.rows)
			}
			rowBuf = t.Row(ix, rowBuf)
			for c := range acc {
				acc[c] += rowBuf[c]
			}
		}
		out[s] = acc
	}
	return out, nil
}
