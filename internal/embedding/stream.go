package embedding

import (
	"fmt"

	"dlrmsim/internal/cpusim"
	"dlrmsim/internal/memsim"
	"dlrmsim/internal/trace"
)

// PrefetchMode selects how the prefetch target address is computed.
type PrefetchMode int

const (
	// ModeIndexed is Algorithm 3: the future target is read from the
	// indices array (exact indirect prefetching).
	ModeIndexed PrefetchMode = iota
	// ModeSequential models compiler-inserted stride prefetching
	// (gcc -fprefetch-loop-arrays): the "predicted" next row is the one
	// sequentially after the current row — almost always wrong for
	// embedding lookups, reproducing Fig. 10(a)'s null result.
	ModeSequential
)

// PrefetchConfig is the paper's Algorithm 3 knob set.
type PrefetchConfig struct {
	// Dist is the look-ahead distance in lookups (pf_dist); 0 disables
	// software prefetching. The paper finds 4 optimal on Cascade Lake.
	Dist int
	// Blocks is how many cache lines of the future row to prefetch
	// (pf_blocks); 0 means the whole row. The paper finds the whole row
	// (8 lines at dim 128) optimal on Cascade Lake, 2 on wider-window
	// parts.
	Blocks int
	// Hint selects the target cache level; the zero value means L1
	// (_MM_HINT_T0), the paper's choice.
	Hint memsim.AccessKind
	// Mode selects exact indirect prefetching (the default, Algorithm 3)
	// or the compiler-style sequential guess.
	Mode PrefetchMode
}

// Enabled reports whether prefetching is active.
func (p PrefetchConfig) Enabled() bool { return p.Dist > 0 }

// StreamConfig configures instruction-stream generation for the
// embedding stage.
type StreamConfig struct {
	// Prefetch inserts Algorithm 3 software prefetches when enabled.
	Prefetch PrefetchConfig
	// FlopsPerCycle converts the kernel's vector-add FLOPs into compute
	// cycles (platform-dependent; e.g. ~32 effective f32 FLOPs/cycle
	// with AVX-512).
	FlopsPerCycle float64
	// BufBase is the base address of this batch's private buffers
	// (offsets, indices, outputs). Each in-flight batch needs a disjoint
	// region.
	BufBase memsim.Addr
}

// Buffer layout within a batch's private region.
const (
	offsetsOff = 0
	indicesOff = 64 << 10 // offsets are tiny; indices start at 64 KiB
	outputOff  = 16 << 20 // per-table outputs start at 16 MiB
)

// bagStream generates the instruction stream of embedding_bag over one
// table (Algorithm 2, plus Algorithm 3 when prefetching is on).
type bagStream struct {
	t   *Table
	tb  trace.TableBatch
	cfg StreamConfig

	outBase  memsim.Addr
	addCost  float64 // compute cycles per row line (16 f32 adds)
	pfBlocks int

	sample int
	lookup int32 // absolute position in tb.Indices
	queue  []cpusim.Op
	qpos   int
}

// newBagStream builds the per-table kernel stream. tableSlot is the
// table's position within the stage (used to place its output buffer).
func newBagStream(t *Table, tb trace.TableBatch, tableSlot int, cfg StreamConfig) *bagStream {
	if cfg.FlopsPerCycle <= 0 {
		panic(fmt.Sprintf("embedding: FlopsPerCycle %g", cfg.FlopsPerCycle))
	}
	pfBlocks := cfg.Prefetch.Blocks
	if pfBlocks <= 0 || pfBlocks > t.RowLines() {
		pfBlocks = t.RowLines()
	}
	// Accumulation cost per row line: one FLOP per element for fp32
	// adds, two for quantized rows (dequantize multiply + add).
	flopsPerElem := 1.0
	if t.DType() != F32 {
		flopsPerElem = 2
	}
	elemsPerLine := float64(memsim.LineSize / t.DType().ElemBytes())
	batch := len(tb.Offsets) - 1
	return &bagStream{
		t:        t,
		tb:       tb,
		cfg:      cfg,
		outBase:  cfg.BufBase + outputOff + memsim.Addr(tableSlot*batch*t.Dim()*4),
		addCost:  elemsPerLine * flopsPerElem / cfg.FlopsPerCycle,
		pfBlocks: pfBlocks,
	}
}

// Next implements cpusim.Stream.
func (s *bagStream) Next(op *cpusim.Op) bool {
	for s.qpos >= len(s.queue) {
		if !s.refill() {
			return false
		}
	}
	*op = s.queue[s.qpos]
	s.qpos++
	return true
}

// refill enqueues the ops for the next unit of work: a sample prologue,
// one lookup, or a sample epilogue.
func (s *bagStream) refill() bool {
	batch := len(s.tb.Offsets) - 1
	if s.sample >= batch {
		return false
	}
	s.queue = s.queue[:0]
	s.qpos = 0

	lo, hi := s.tb.Offsets[s.sample], s.tb.Offsets[s.sample+1]
	if s.lookup < lo {
		s.lookup = lo
	}
	if s.lookup == lo {
		// Sample prologue: read the offsets pair, zero the accumulator.
		s.queue = append(s.queue,
			cpusim.Op{Kind: cpusim.OpLoad, Addr: s.cfg.BufBase + offsetsOff + memsim.Addr(s.sample*4)},
			cpusim.Op{Kind: cpusim.OpCompute, Cost: float64(s.t.RowLines()) * s.addCost / 2},
		)
	}
	if s.lookup >= hi {
		s.sample++
		return len(s.queue) > 0 || s.sample < batch
	}

	l := s.lookup
	// One index-array line covers 16 int32 indices.
	if (l-lo)%16 == 0 {
		s.queue = append(s.queue, cpusim.Op{Kind: cpusim.OpLoad, Addr: s.cfg.BufBase + indicesOff + memsim.Addr(l*4)})
	}
	// Algorithm 3: prefetch pf_blocks lines of the row pf_dist lookups
	// ahead (array-wide look-ahead, clamped at the batch end).
	if pf := s.cfg.Prefetch; pf.Enabled() {
		if ahead := l + int32(pf.Dist); int(ahead) < len(s.tb.Indices) {
			hint := pf.Hint
			if !hint.IsPrefetch() {
				hint = memsim.KindPrefetchL1
			}
			var rowAddr memsim.Addr
			if pf.Mode == ModeSequential {
				// Compiler stride guess: the row after the current one.
				next := s.tb.Indices[l] + int32(pf.Dist)
				if int(next) >= s.t.Rows() {
					next = s.tb.Indices[l]
				}
				rowAddr = s.t.RowAddr(next)
			} else {
				rowAddr = s.t.RowAddr(s.tb.Indices[ahead])
			}
			// One burst op per row: timing-identical to per-line
			// emission (cpusim expands it line by line) but the stream
			// hands the core pf_blocks lines in one Next call.
			s.queue = append(s.queue, cpusim.Op{
				Kind:  cpusim.OpPrefetch,
				Addr:  rowAddr,
				Hint:  hint,
				Lines: int32(s.pfBlocks),
			})
		}
	}
	// Demand gather, per Algorithm 1's inner loop: load the row's
	// storage lines, then for each line of the fp32 accumulator (the
	// sample's output row — an L1 hit after the first touch) load, add,
	// and store back. For quantized tables the storage rows span fewer
	// lines than the fp32 accumulator.
	rowAddr := s.t.RowAddr(s.tb.Indices[l])
	outBytes := s.t.Dim() * 4
	outLines := (outBytes + memsim.LineSize - 1) / memsim.LineSize
	accAddr := s.outBase + memsim.Addr(s.sample*outBytes)
	s.queue = append(s.queue, cpusim.Op{Kind: cpusim.OpLoad, Addr: rowAddr, Lines: int32(s.t.RowLines())})
	accCost := s.addCost * float64(s.t.RowLines()) / float64(outLines)
	for ob := 0; ob < outLines; ob++ {
		off := memsim.Addr(ob * memsim.LineSize)
		s.queue = append(s.queue,
			cpusim.Op{Kind: cpusim.OpLoad, Addr: accAddr + off},
			cpusim.Op{Kind: cpusim.OpCompute, Cost: accCost},
			cpusim.Op{Kind: cpusim.OpStore, Addr: accAddr + off},
		)
	}
	s.lookup++
	return true
}

// NewTableStream returns the instruction stream for embedding_bag over
// one table and one batch of inputs.
func NewTableStream(t *Table, tb trace.TableBatch, tableSlot int, cfg StreamConfig) cpusim.Stream {
	return newBagStream(t, tb, tableSlot, cfg)
}

// BatchSource supplies the embedding_bag inputs for each table of one
// batch (typically a closure over trace.Dataset.Batch).
type BatchSource func(tableID int) trace.TableBatch

// stageStream chains the per-table kernels of a whole embedding stage,
// generating each table's inputs lazily.
type stageStream struct {
	tables []*Table
	src    BatchSource
	cfg    StreamConfig
	idx    int
	cur    cpusim.Stream
}

// NewStageStream returns the instruction stream of the full embedding
// stage for one batch: tables processed in order, per Algorithm 1.
func NewStageStream(tables []*Table, src BatchSource, cfg StreamConfig) cpusim.Stream {
	return &stageStream{tables: tables, src: src, cfg: cfg}
}

// Next implements cpusim.Stream.
func (s *stageStream) Next(op *cpusim.Op) bool {
	for {
		if s.cur == nil {
			if s.idx >= len(s.tables) {
				return false
			}
			t := s.tables[s.idx]
			s.cur = newBagStream(t, s.src(t.ID()), s.idx, s.cfg)
		}
		if s.cur.Next(op) {
			return true
		}
		s.cur = nil
		s.idx++
	}
}
