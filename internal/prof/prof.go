// Package prof wires runtime/pprof into the CLIs behind
// -cpuprofile/-memprofile flags, mirroring `go test`'s flags of the same
// name so the profiles drop straight into `go tool pprof`.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (empty = disabled) and returns a
// stop function that finishes the CPU profile and, when memPath is
// non-empty, writes a heap profile on the way out. Profiles are written
// only on a clean shutdown: callers invoke stop before a normal exit, and
// error paths that os.Exit simply lose the profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		// Flush dead objects so the profile shows live heap, not garbage.
		runtime.GC()
		return pprof.WriteHeapProfile(f)
	}, nil
}
