module dlrmsim

go 1.22
